package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split from same root diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(13)
	const buckets = 8
	const draws = 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too much from %v", b, c, want)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Fatalf("Bernoulli(%v) rate %v outside tolerance %v", p, got, tol)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Fatal("Bernoulli(1.5) returned false")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	p := 0.2
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(37)
	const n = 5
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		a := []int{0, 1, 2, 3, 4}
		r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("value %d appeared first %d times, want ~%v", v, c, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(41)
	z := NewZipf(1000, 1.1)
	counts := make(map[int64]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Draw(r)
		if v < 1 || v > 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Fatalf("zipf not skewed: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(43)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.01) {
			n++
		}
	}
	_ = n
}
