// Package analysistest runs a lint.Analyzer over a testdata source corpus
// and checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// Corpus layout follows the x/tools convention: testdata/src/<importpath>/
// holds one package, and the import path given to Run doubles as the
// package's path during type-checking — so an analyzer that keys off import
// paths (detsource's determinism-contract packages) sees the path the corpus
// directory spells, e.g. testdata/src/robustsample/internal/sampler.
//
// Expectations are end-of-line comments on the offending line:
//
//	time.Now() // want `detsource: wall clock`
//	x := 1     // two findings: // want `first` `second`
//
// Every diagnostic must match a want on its line and every want must be
// matched by a diagnostic; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"robustsample/internal/lint"
)

// Run loads testdata/src/<pkgpath> for each pkgpath, runs the analyzer, and
// reports mismatches between diagnostics and want comments through t.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		runOne(t, testdata, a, pkgpath)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func runOne(t *testing.T, testdata string, a *lint.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			t.Fatalf("%s: %v", pkgpath, err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: parse: %v", pkgpath, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", full, i+1)
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", pkgpath, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck: %v", pkgpath, err)
	}

	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      tpkg,
		Info:     info,
		Report:   func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkgpath, err)
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claim(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pkgpath, d)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s matching %q", pkgpath, k, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation matching msg.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
