// Package lint is a small, dependency-free analysis framework in the spirit
// of golang.org/x/tools/go/analysis, built on the standard library's go/ast
// and go/types only (the module vendors no third-party code). It exists to
// host the repo-specific robustlint analyzers: every invariant the
// reproduction's guarantees rest on — bit-identical adversarial-robustness
// verdicts, split-seeded copy independence, zero-alloc ingest — is enforced
// by an Analyzer in a subpackage, and cmd/robustlint runs them all as a CI
// gate.
//
// The framework deliberately mirrors the x/tools API shape (Analyzer with a
// Run func over a Pass carrying files, type info and a Report hook) so the
// analyzers port mechanically if the dependency ever becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "detsource").
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces, shown by cmd/robustlint -help.
	Doc string
	// Run performs the analysis. Implementations report findings through
	// the Pass and return an error only for internal failures.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax, including in-package _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info
	// Report receives each diagnostic. The driver sets it.
	Report func(Diagnostic)

	directives map[string]map[int][]Directive // file -> line -> directives
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Directive is one parsed //robust: comment.
type Directive struct {
	// Tag is the word after "robust:" — "nondet", "hotpath", "alloc",
	// "panics", "universe-check", "codec-version", "codec-pair".
	Tag string
	// Reason is the rest of the comment. Suppression tags require one.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// Tags that suppress a finding and therefore must carry an audit reason.
var reasonRequired = map[string]bool{
	"nondet":     true,
	"alloc":      true,
	"panics":     true,
	"codec-pair": true,
	"atomic":     true,
}

// knownTags is the full directive grammar; anything else is a typo and is
// reported by CheckDirectives so a misspelled suppression cannot silently
// turn a check off.
var knownTags = map[string]bool{
	"nondet":         true,
	"hotpath":        true,
	"alloc":          true,
	"panics":         true,
	"universe-check": true,
	"codec-version":  true,
	"codec-pair":     true,
	"atomic":         true,
}

var directiveRe = regexp.MustCompile(`^//robust:([a-z-]+)\s*(.*)$`)

// ParseDirective parses one comment, reporting whether it is a //robust:
// directive at all.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	m := directiveRe.FindStringSubmatch(c.Text)
	if m == nil {
		return Directive{}, false
	}
	return Directive{Tag: m[1], Reason: strings.TrimSpace(m[2]), Pos: c.Pos()}, true
}

// buildDirectives indexes every //robust: comment by file and line.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string]map[int][]Directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// DirectivesAt returns the directives attached to pos's line: on the line
// itself or on the line directly above it.
func (p *Pass) DirectivesAt(pos token.Pos) []Directive {
	p.buildDirectives()
	position := p.Fset.Position(pos)
	byLine := p.directives[position.Filename]
	if byLine == nil {
		return nil
	}
	var out []Directive
	out = append(out, byLine[position.Line]...)
	out = append(out, byLine[position.Line-1]...)
	return out
}

// Suppressed reports whether a finding at pos is suppressed by a
// //robust:<tag> directive: on the finding's line, the line above it, or in
// the doc comment of the enclosing function declaration. A suppression with
// a missing reason still suppresses — CheckDirectives reports the missing
// reason separately, so the audit trail stays mandatory without double
// findings.
func (p *Pass) Suppressed(pos token.Pos, tag string) bool {
	for _, d := range p.DirectivesAt(pos) {
		if d.Tag == tag {
			return true
		}
	}
	if decl := p.EnclosingFunc(pos); decl != nil {
		if _, ok := p.FuncDirective(decl, tag); ok {
			return true
		}
	}
	return false
}

// FuncDirective reports whether decl carries //robust:<tag> in its doc
// comment or on the line above its declaration, returning the reason.
func (p *Pass) FuncDirective(decl *ast.FuncDecl, tag string) (string, bool) {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if d, ok := ParseDirective(c); ok && d.Tag == tag {
				return d.Reason, true
			}
		}
	}
	for _, d := range p.DirectivesAt(decl.Pos()) {
		if d.Tag == tag {
			return d.Reason, true
		}
	}
	return "", false
}

// LitDirective reports whether a function literal carries //robust:<tag> on
// its own line or the line above — the annotation form for hot-path closures
// (the router batch lanes), which have no FuncDecl to hang a doc comment on.
func (p *Pass) LitDirective(lit *ast.FuncLit, tag string) (string, bool) {
	for _, d := range p.DirectivesAt(lit.Pos()) {
		if d.Tag == tag {
			return d.Reason, true
		}
	}
	return "", false
}

// EnclosingFunc returns the innermost function declaration containing pos,
// or nil.
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// CheckDirectives validates the //robust: comment grammar across the pass's
// files: unknown tags and suppressions without a reason are findings, so
// every opt-out stays auditable. It is invoked by cmd/robustlint as part of
// every run (the analyzers themselves only consume directives).
func CheckDirectives(p *Pass) {
	p.buildDirectives()
	type entry struct {
		file string
		line int
		d    Directive
	}
	var all []entry
	for file, byLine := range p.directives {
		for line, ds := range byLine {
			for _, d := range ds {
				all = append(all, entry{file, line, d})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].file != all[j].file {
			return all[i].file < all[j].file
		}
		return all[i].line < all[j].line
	})
	for _, e := range all {
		if !knownTags[e.d.Tag] {
			p.Reportf(e.d.Pos, "unknown //robust:%s directive (known: alloc, atomic, codec-pair, codec-version, hotpath, nondet, panics, universe-check)", e.d.Tag)
			continue
		}
		if reasonRequired[e.d.Tag] && e.d.Reason == "" {
			p.Reportf(e.d.Pos, "//robust:%s suppression needs a reason — opt-outs must be auditable", e.d.Tag)
		}
	}
}
