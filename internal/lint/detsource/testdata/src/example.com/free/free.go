// Package free is outside the determinism contract: the same constructs
// must produce no findings.
package free

import "time"

func Clock(counts map[int64]int) int64 {
	_ = time.Now()
	var sum int64
	for k := range counts {
		sum += k
	}
	return sum
}
