// Package sampler is a detsource corpus: its import path suffix-matches the
// determinism contract, so wall clocks, out-of-tree randomness and map
// ranges are findings unless carrying //robust:nondet.
package sampler

import (
	_ "math/rand" // want `import of math/rand in determinism-contract package`
	"time"
)

// Bad trips every rule without suppression.
func Bad(counts map[int64]int) int64 {
	t := time.Now() // want `time.Now in determinism-contract package`
	var sum int64
	for k := range counts { // want `map iteration order is randomized`
		sum += k
	}
	_ = time.Since(t) // want `time.Since in determinism-contract package`
	return sum
}

// Suppressed shows each opt-out form: same line, and enclosing-function doc.
func Suppressed(counts map[int64]int) int64 {
	_ = time.Now() //robust:nondet backoff deadline only
	var sum int64
	//robust:nondet sum is order-insensitive
	for k := range counts {
		sum += k
	}
	return sum
}

//robust:nondet whole function is a wall-clock soak helper
func SuppressedByDoc() time.Time {
	return time.Now()
}

// sliceRange must not be confused with a map range.
func sliceRange(xs []int64) int64 {
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum
}
