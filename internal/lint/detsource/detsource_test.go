package detsource_test

import (
	"testing"

	"robustsample/internal/lint/analysistest"
	"robustsample/internal/lint/detsource"
)

func TestDetsource(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer,
		"robustsample/internal/sampler",
		"example.com/free",
	)
}
