// Package detsource enforces the determinism contract of DESIGN.md: in the
// packages whose output is pinned bit-for-bit (samplers, set systems, the
// sharded engine and serving runtime, and the public sketch surface), no
// randomness or ordering may come from outside the split-seeded rng tree.
//
// In a determinism-contract package the analyzer forbids:
//
//   - time.Now and time.Since — wall-clock values reaching sampler or
//     verdict state break replay; legitimate wall-clock uses (backoff
//     deadlines, soak timers) must carry //robust:nondet <reason>.
//   - importing math/rand, math/rand/v2 or crypto/rand — all randomness
//     flows through internal/rng, whose root seed and Split/DeriveSeed
//     derivation make every draw replayable; a direct rand.* call or seed
//     bypasses that tree.
//   - ranging over a map — iteration order is randomized per run, so any
//     map-range whose effects reach deterministic state reorders it;
//     order-insensitive folds must be annotated //robust:nondet with the
//     argument for insensitivity.
package detsource

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"robustsample/internal/lint"
)

// ContractPackages lists the determinism-contract import paths (matched as
// path suffixes so testdata corpora can reuse them). DESIGN.md's "Enforced
// invariants" section documents the mapping.
var ContractPackages = []string{
	"robustsample/internal/rng",
	"robustsample/internal/sampler",
	"robustsample/internal/setsystem",
	"robustsample/internal/shard",
	"robustsample/internal/runtime",
	"robustsample/sketch",
	"robustsample/switching",
	"robustsample/quantile",
	"robustsample/topk",
	"robustsample/shard",
}

var bannedImports = map[string]string{
	"math/rand":    "global math/rand bypasses the rng split-seed tree",
	"math/rand/v2": "math/rand/v2 bypasses the rng split-seed tree",
	"crypto/rand":  "crypto/rand is nondeterministic by design",
}

// Analyzer is the detsource check.
var Analyzer = &lint.Analyzer{
	Name: "detsource",
	Doc:  "forbid wall-clock reads, out-of-tree randomness, and map-range ordering in determinism-contract packages",
	Run:  run,
}

// applies reports whether path is under the determinism contract. The
// _test variant of a contract package is covered too: test helpers that
// feed deterministic state are held to the same rules.
func applies(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range ContractPackages {
		if path == p || strings.HasSuffix(path, p) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if !applies(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok && !pass.Suppressed(imp.Pos(), "nondet") {
				pass.Reportf(imp.Pos(), "import of %s in determinism-contract package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := timeCall(pass, n); ok && !pass.Suppressed(n.Pos(), "nondet") {
					pass.Reportf(n.Pos(), "time.%s in determinism-contract package: wall-clock values must not reach deterministic state (annotate //robust:nondet <reason> if this is a legitimate timer)", name)
				}
			case *ast.RangeStmt:
				if t := pass.Info.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !pass.Suppressed(n.Pos(), "nondet") {
						pass.Reportf(n.Pos(), "map iteration order is randomized: a range over %s can reorder deterministic state (annotate //robust:nondet <reason> if the fold is order-insensitive)", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

// timeCall reports whether call is time.Now or time.Since.
func timeCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "time" {
		return "", false
	}
	return sel.Sel.Name, true
}
