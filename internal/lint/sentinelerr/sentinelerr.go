// Package sentinelerr enforces the public error contract introduced in the
// PR 4 API redesign: exported functions and methods of the module's public
// packages never panic (Must* helpers are the one sanctioned panic surface)
// and fail through the package's sentinel errors (ErrBadSnapshot,
// ErrServing, ErrBackpressure, ...) so callers can errors.Is-match every
// failure mode.
//
// Concretely, inside the body of an exported function of a public (non-
// internal, non-main) package:
//
//   - panic(...) is a finding unless the function's name starts with Must
//     or the call carries //robust:panics <reason> (the documented
//     invariant-violation panics on undecodable retained samples).
//   - errors.New(...) is a finding: an ad-hoc leaf error cannot be matched
//     by callers. Define a package sentinel instead.
//   - fmt.Errorf(...) without a %w verb is a finding for the same reason;
//     with %w it wraps a matchable error and is the sanctioned way to add
//     context to a sentinel.
//
// Package-level `var ErrX = errors.New(...)` declarations are outside
// function bodies and are exactly the sentinel pattern this check drives
// code toward.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"robustsample/internal/lint"
)

// Analyzer is the sentinelerr check.
var Analyzer = &lint.Analyzer{
	Name: "sentinelerr",
	Doc:  "exported functions of public packages must not panic and must fail through package sentinel errors",
	Run:  run,
}

// applies reports whether the package is part of the module's public
// surface. Test variants are exempt: tests panic via t.Fatal machinery and
// build throwaway errors freely.
func applies(pkg *types.Package) bool {
	path := pkg.Path()
	return !strings.Contains(path, "/internal/") &&
		!strings.HasSuffix(path, "_test") &&
		!strings.Contains(path, "/cmd/") &&
		!strings.Contains(path, "/examples/") &&
		pkg.Name() != "main"
}

func run(pass *lint.Pass) error {
	if !applies(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue // the sanctioned panic surface
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltinPanic(pass, call):
			if !pass.Suppressed(call.Pos(), "panics") {
				pass.Reportf(call.Pos(), "%s is exported: it must return a sentinel error, not panic (rename to Must%s or annotate //robust:panics <reason> for a documented invariant violation)", fd.Name.Name, fd.Name.Name)
			}
		case isPkgCall(pass, call, "errors", "New"):
			if !pass.Suppressed(call.Pos(), "panics") {
				pass.Reportf(call.Pos(), "ad-hoc errors.New in exported %s: callers cannot errors.Is-match it — define a package sentinel (var Err... = errors.New) and wrap it", fd.Name.Name)
			}
		case isPkgCall(pass, call, "fmt", "Errorf"):
			if !errorfWraps(call) && !pass.Suppressed(call.Pos(), "panics") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w in exported %s: the error is an unmatchable leaf — wrap a package sentinel with %%w", fd.Name.Name)
			}
		}
		return true
	})
}

// isBuiltinPanic reports whether call is the predeclared panic.
func isBuiltinPanic(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isPkgCall reports whether call is pkg.name for the given stdlib package.
func isPkgCall(pass *lint.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == pkgPath
}

// errorfWraps reports whether a fmt.Errorf call's format literal contains a
// %w verb (a non-literal format is treated as wrapping — it cannot be
// checked statically and vet owns format-string correctness).
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return true
	}
	return strings.Contains(format, "%w")
}
