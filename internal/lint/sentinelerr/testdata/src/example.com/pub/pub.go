// Package pub is the sentinelerr corpus: a public (non-internal) package
// whose exported functions must fail through sentinels, never panic.
package pub

import (
	"errors"
	"fmt"
)

// ErrBad is the package sentinel exported functions should wrap.
var ErrBad = errors.New("pub: bad input")

func Panics(n int) {
	if n < 0 {
		panic("negative") // want `Panics is exported: it must return a sentinel error, not panic`
	}
}

func AdHoc(n int) error {
	if n < 0 {
		return errors.New("negative") // want `ad-hoc errors.New in exported AdHoc`
	}
	return nil
}

func Leaf(n int) error {
	if n < 0 {
		return fmt.Errorf("negative %d", n) // want `fmt.Errorf without %w in exported Leaf`
	}
	return nil
}

// Wrapped is the sanctioned form: context around a matchable sentinel.
func Wrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: %d", ErrBad, n)
	}
	return nil
}

// MustPositive is the sanctioned panic surface.
func MustPositive(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Invariant documents its panic.
//
//robust:panics retained state was validated on admission; reaching this is corruption
func Invariant(ok bool) {
	if !ok {
		panic("corrupted")
	}
}

// unexported helpers may panic freely.
func helper(n int) {
	if n < 0 {
		panic("negative")
	}
}
