// Package impl is internal: sentinelerr does not apply.
package impl

import "errors"

func Panics(n int) {
	if n < 0 {
		panic("negative")
	}
}

func AdHoc() error { return errors.New("fine here") }
