package sentinelerr_test

import (
	"testing"

	"robustsample/internal/lint/analysistest"
	"robustsample/internal/lint/sentinelerr"
)

func TestSentinelerr(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelerr.Analyzer,
		"example.com/pub",
		"example.com/internal/impl",
	)
}
