// Package a is the snapshotframe corpus: frame-kind collisions, unpaired
// Snapshot/Restore, Restore without universe validation, the codec-pair and
// universe-check opt-outs, and codec version pins.
package a

import "errors"

const (
	kindAlpha = 1
	kindBeta  = 2
	KindGamma = 2 // want `frame kind KindGamma = 2 collides with kindBeta`
	notAKind  = 2

	snapVersion  = 7
	codecVersion = 9 // want `codec version codecVersion = 9 is not pinned`
)

var errBad = errors.New("a: bad snapshot")

// Paired round-trips and validates through the annotated helper: no findings.
type Paired struct{ pts []int64 }

func (p *Paired) Snapshot() ([]byte, error) { return nil, nil }

func (p *Paired) Restore(data []byte) error {
	return p.validate(data)
}

//robust:universe-check
func (p *Paired) validate(data []byte) error {
	for _, b := range data {
		if int64(b) < 1 {
			return errBad
		}
	}
	return nil
}

// Delegating discharges validation onto an inner Restore.
type Delegating struct{ inner *Paired }

func (d *Delegating) Snapshot() ([]byte, error) { return d.inner.Snapshot() }
func (d *Delegating) Restore(data []byte) error { return d.inner.Restore(data) }

// Orphan has no Restore.
type Orphan struct{}

func (o *Orphan) Snapshot() ([]byte, error) { return nil, nil } // want `Orphan has Snapshot but no Restore`

// Sink has no Snapshot, and its Restore trusts the bytes blindly.
type Sink struct{ pts []int64 }

// want below fires twice: missing Snapshot, and no universe validation.
func (s *Sink) Restore(data []byte) error { // want `Sink has Restore but no Snapshot` `Sink.Restore builds state without reaching universe validation`
	s.pts = s.pts[:0]
	for _, b := range data {
		s.pts = append(s.pts, int64(b))
	}
	return nil
}

// Emitter's bytes are decoded by Paired.Restore; the cross-type pairing is
// recorded with codec-pair.
type Emitter struct{ p *Paired }

//robust:codec-pair Paired.Restore accepts this format
func (e *Emitter) Snapshot() ([]byte, error) { return e.p.Snapshot() }
