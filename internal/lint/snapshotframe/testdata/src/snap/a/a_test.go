package a

// The law-test pin for snapVersion; codecVersion deliberately has none.
//
//robust:codec-version 7
var _ = snapVersion
