// Package snapshotframe enforces the snapshot-codec contract (DESIGN.md
// "Snapshot laws"): the frame-kind namespace stays collision-free, every
// Snapshot has a Restore, every Restore validates decoded state against the
// universe before building sketch state, and codec version bumps force a
// visit to the round-trip-law tests.
//
// The PR 8 fuzz crasher — Restore accepting sample points outside the
// universe and deferring the panic to View — is exactly the class the
// Restore check catches at compile time.
//
// Checks, per package:
//
//   - frame kinds: package-level integer constants whose names start with
//     "kind"/"Kind"/"frame"/"Frame" share one namespace; two distinct
//     constants with equal values collide (a frame byte claimed twice makes
//     snapshots ambiguous).
//   - pairing: a type with Snapshot() ([]byte, error) must have
//     Restore([]byte) error, and vice versa. A //robust:codec-pair <reason>
//     annotation on the unpaired method records a cross-type pairing (a
//     Snapshot whose bytes another type's Restore accepts).
//   - validation: a Restore method must reach universe validation before
//     its caller can trust the state — it must (transitively through
//     same-package callees) call a function annotated
//     //robust:universe-check, or delegate to another Restore/LoadState
//     (whose own obligation covers the decoded points).
//   - version pins: a package-level constant matching (snap|codec)Version
//     must be pinned by a //robust:codec-version <N> comment in one of the
//     package's _test.go files with N equal to the constant — bumping the
//     codec version without touching the round-trip-law test file is a
//     finding.
package snapshotframe

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"robustsample/internal/lint"
)

// Analyzer is the snapshotframe check.
var Analyzer = &lint.Analyzer{
	Name: "snapshotframe",
	Doc:  "frame kinds unique, Snapshot/Restore paired, Restore validates the universe, codec version bumps touch the law tests",
	Run:  run,
}

var kindNameRe = regexp.MustCompile(`^(kind|Kind|frame|Frame)`)
var versionNameRe = regexp.MustCompile(`(?i)^(snap|codec)version$`)

func run(pass *lint.Pass) error {
	checkKindCollisions(pass)
	checkPairing(pass)
	checkVersionPins(pass)
	return nil
}

// checkKindCollisions flags two kind/frame constants with the same value.
func checkKindCollisions(pass *lint.Pass) {
	type kindConst struct {
		name string
		pos  ast.Node
	}
	byValue := make(map[int64]*ast.Ident)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || !kindNameRe.MatchString(name.Name) {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(obj.Val()))
					if !ok {
						continue
					}
					if prev, clash := byValue[v]; clash {
						pass.Reportf(name.Pos(), "frame kind %s = %d collides with %s: every frame kind constant must be declared exactly once (snapshots would be ambiguous)", name.Name, v, prev.Name)
					} else {
						byValue[v] = name
					}
				}
			}
		}
	}
}

// methodInfo locates a named method declaration in the package.
type methodInfo struct {
	decl *ast.FuncDecl
	recv string
}

// checkPairing enforces Snapshot<->Restore pairing and the Restore
// validation obligation.
func checkPairing(pass *lint.Pass) {
	snapshots := make(map[string]*ast.FuncDecl) // receiver type name -> decl
	restores := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			switch fd.Name.Name {
			case "Snapshot":
				if isSnapshotSig(pass, fd) {
					snapshots[recv] = fd
				}
			case "Restore":
				if isRestoreSig(pass, fd) {
					restores[recv] = fd
				}
			}
		}
	}
	for recv, fd := range snapshots {
		if _, ok := restores[recv]; !ok {
			if _, paired := pass.FuncDirective(fd, "codec-pair"); !paired {
				pass.Reportf(fd.Pos(), "%s has Snapshot but no Restore([]byte) error: every codec must round-trip (three-law tests need both directions; annotate //robust:codec-pair <reason> if another type's Restore accepts this format)", recv)
			}
		}
	}
	for recv, fd := range restores {
		if _, ok := snapshots[recv]; !ok {
			if _, paired := pass.FuncDirective(fd, "codec-pair"); !paired {
				pass.Reportf(fd.Pos(), "%s has Restore but no Snapshot() ([]byte, error): every codec must round-trip (annotate //robust:codec-pair <reason> if the bytes come from another type's Snapshot)", recv)
			}
		}
		if !validatesUniverse(pass, fd, 0, make(map[*ast.FuncDecl]bool)) {
			pass.Reportf(fd.Pos(), "%s.Restore builds state without reaching universe validation: it must call a //robust:universe-check function (or delegate to another Restore/LoadState) before trusting decoded points — the PR 8 fuzz-crasher class", recv)
		}
	}
}

// validatesUniverse reports whether fd (transitively, through same-package
// function declarations, depth-limited) reaches universe validation: a call
// to a //robust:universe-check-annotated function, a delegated Restore, or
// an internal LoadState.
func validatesUniverse(pass *lint.Pass, fd *ast.FuncDecl, depth int, visiting map[*ast.FuncDecl]bool) bool {
	if depth > 4 || visiting[fd] {
		return false
	}
	if _, ok := pass.FuncDirective(fd, "universe-check"); ok {
		return true
	}
	visiting[fd] = true
	defer delete(visiting, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			// Delegation: any x.Restore(...) / x.LoadState(...) discharges
			// the obligation onto the callee's own Restore contract.
			if fun.Sel.Name == "Restore" || fun.Sel.Name == "LoadState" {
				found = true
				return false
			}
			if callee := declOf(pass, fun.Sel); callee != nil {
				if validatesUniverse(pass, callee, depth+1, visiting) {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if callee := declOf(pass, fun); callee != nil {
				if validatesUniverse(pass, callee, depth+1, visiting) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// declOf maps an identifier back to a function declaration in this package.
func declOf(pass *lint.Pass, id *ast.Ident) *ast.FuncDecl {
	obj := pass.Info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	pos := fn.Pos()
	for _, f := range pass.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == pos && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// checkVersionPins requires every codec version constant to be pinned in a
// test file via //robust:codec-version.
func checkVersionPins(pass *lint.Pass) {
	type pin struct {
		value int64
		found bool
	}
	// Collect the pins declared in test files.
	pins := make(map[int64]bool)
	anyTestFile := false
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		anyTestFile = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := lint.ParseDirective(c)
				if !ok || d.Tag != "codec-version" {
					continue
				}
				if v, err := strconv.ParseInt(strings.Fields(d.Reason + " 0")[0], 10, 64); err == nil {
					pins[v] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || !versionNameRe.MatchString(name.Name) {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(obj.Val()))
					if !ok {
						continue
					}
					if !anyTestFile {
						// External-test-only packages: the base pass has no
						// test files; the obligation still stands and is
						// reported so the pin lands next to the law tests.
						pass.Reportf(name.Pos(), "codec version %s = %d has no //robust:codec-version %d pin in a _test.go file: version bumps must touch the round-trip-law tests", name.Name, v, v)
						continue
					}
					if !pins[v] {
						pass.Reportf(name.Pos(), "codec version %s = %d is not pinned: add '//robust:codec-version %d' to the package's round-trip-law test file so a version bump forces the laws to be revisited", name.Name, v, v)
					}
				}
			}
		}
	}
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isSnapshotSig matches Snapshot() ([]byte, error).
func isSnapshotSig(pass *lint.Pass, fd *ast.FuncDecl) bool {
	sig, ok := signatureOf(pass, fd)
	if !ok {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
		isByteSlice(sig.Results().At(0).Type()) && isError(sig.Results().At(1).Type())
}

// isRestoreSig matches Restore([]byte) error.
func isRestoreSig(pass *lint.Pass, fd *ast.FuncDecl) bool {
	sig, ok := signatureOf(pass, fd)
	if !ok {
		return false
	}
	return sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && isError(sig.Results().At(0).Type())
}

func signatureOf(pass *lint.Pass, fd *ast.FuncDecl) (*types.Signature, bool) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	return sig, ok
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isError(t types.Type) bool {
	return t.String() == "error"
}
