package snapshotframe_test

import (
	"testing"

	"robustsample/internal/lint/analysistest"
	"robustsample/internal/lint/snapshotframe"
)

func TestSnapshotframe(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotframe.Analyzer, "snap/a")
}
