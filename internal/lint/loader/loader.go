// Package loader loads and type-checks the module's packages for the
// robustlint analyzers without golang.org/x/tools: package metadata comes
// from `go list -json`, syntax from go/parser, and types from go/types with
// the standard library resolved through the compiler-independent source
// importer. In-module packages are type-checked bottom-up in dependency
// order so every analyzer sees fully resolved types.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("robustsample/internal/sampler").
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Fset positions all of Files.
	Fset *token.FileSet
	// Files holds the parsed syntax: GoFiles plus in-package test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the checker's resolution maps for Files.
	Info *types.Info
	// IsTestVariant marks the external-test package (package foo_test).
	IsTestVariant bool
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string // in-package _test.go files
	XTestGoFiles []string // external-test (package foo_test) files
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *struct{ Path string }
}

// Load lists patterns (relative to dir) with the go command and returns the
// matched in-module packages, type-checked with their in-package test files.
// External-test packages (package foo_test) are returned as separate
// *_test-suffixed entries so their sources are linted too.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	// Close over in-module imports not matched by the patterns, so partial
	// pattern lists still type-check against real dependencies.
	for {
		var missing []string
		for _, lp := range listed {
			for _, imp := range append(append(append([]string{}, lp.Imports...), lp.TestImports...), lp.XTestImports...) {
				if lp.Module != nil && strings.HasPrefix(imp, lp.Module.Path+"/") || imp == modulePath(listed) {
					if _, ok := byPath[imp]; !ok {
						missing = append(missing, imp)
					}
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		more, err := goList(dir, dedup(missing))
		if err != nil {
			return nil, err
		}
		for _, lp := range more {
			if _, ok := byPath[lp.ImportPath]; !ok {
				byPath[lp.ImportPath] = lp
				listed = append(listed, lp)
			}
		}
	}

	order, err := topoOrder(listed, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		fset:     fset,
		source:   importer.ForCompiler(fset, "source", nil),
		packages: make(map[string]*types.Package),
	}

	want := make(map[string]bool, len(listed))
	for _, lp := range listed {
		want[lp.ImportPath] = true
	}

	// Phase 1: base packages (with their in-package test files) in
	// dependency order. Phase 2: external-test packages, which may import
	// anything — by then every base package is resolved.
	var out []*Package
	for _, lp := range order {
		pkg, err := check(fset, imp, lp, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...), lp.ImportPath, false)
		if err != nil {
			return nil, err
		}
		imp.packages[lp.ImportPath] = pkg.Types
		if want[lp.ImportPath] {
			out = append(out, pkg)
		}
	}
	for _, lp := range order {
		if len(lp.XTestGoFiles) == 0 || !want[lp.ImportPath] {
			continue
		}
		xt, err := check(fset, imp, lp, lp.XTestGoFiles, lp.ImportPath+"_test", true)
		if err != nil {
			return nil, err
		}
		out = append(out, xt)
	}
	return out, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.ImporterFrom, lp *listedPackage, files []string, path string, testVariant bool) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		full := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: parse %s: %w", full, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", path, err)
	}
	return &Package{
		PkgPath:       path,
		Dir:           lp.Dir,
		Fset:          fset,
		Files:         syntax,
		Types:         tpkg,
		Info:          info,
		IsTestVariant: testVariant,
	}, nil
}

// moduleImporter resolves in-module imports from already-checked packages
// and everything else (the standard library) through the source importer.
type moduleImporter struct {
	fset     *token.FileSet
	source   types.Importer
	packages map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.packages[path]; ok {
		return pkg, nil
	}
	if from, ok := m.source.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return m.source.Import(path)
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w", strings.Join(patterns, " "), err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("loader: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// topoOrder sorts packages dependencies-first, considering only in-module
// edges (stdlib imports resolve through the source importer on demand).
func topoOrder(listed []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(listed))
	var order []*listedPackage
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("loader: import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = visiting
		// Imports and in-package test imports are both acyclic in valid Go
		// (in-package test cycles are compile errors), so together they
		// order phase 1. External-test imports may legally cycle back and
		// are resolved in phase 2, after every base package is checked.
		for _, imp := range append(append([]string{}, lp.Imports...), lp.TestImports...) {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = done
		order = append(order, lp)
		return nil
	}
	sorted := append([]*listedPackage{}, listed...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, lp := range sorted {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func modulePath(listed []*listedPackage) string {
	for _, lp := range listed {
		if lp.Module != nil {
			return lp.Module.Path
		}
	}
	return ""
}

func dedup(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
