// Package a is the hotpathalloc corpus: alloc-defeating constructs inside
// //robust:hotpath functions, the //robust:alloc opt-out, and both
// directions of the golden-list cross-check.
package a // want `golden hot path hotpath/a.Gone is not annotated //robust:hotpath`

import "fmt"

func sink(v interface{}) { _ = v }

func helper() {}

//robust:hotpath
func Hot(xs []int64, s string) int64 {
	defer helper()                    // want `defer in hot path Hot`
	go helper()                       // want `go statement in hot path Hot`
	f := func() int64 { return 1 }    // want `closure in hot path Hot`
	scratch := make([]int64, len(xs)) // want `make in hot path Hot allocates per call`
	scratch = append(scratch[:0], xs...)
	other := append(scratch, 9) // want `append in hot path Hot whose result is not assigned back`
	fmt.Println(other)          // want `fmt.Println in hot path Hot`
	_ = s + "!"                 // want `string concatenation in hot path Hot`
	_ = []byte(s)               // want `conversion string -> \[\]byte in hot path Hot`
	sink(len(xs))               // want `boxes a concrete int into interface`
	return f()
}

type state struct{ buf []int64 }

// Amortized shows every sanctioned zero-alloc idiom: guarded grow-once
// scratch, self-assigned append, and an audited defer.
//
//robust:hotpath
func (st *state) Amortized(xs []int64) {
	defer helper() //robust:alloc open-coded, required by the shutdown protocol
	if cap(st.buf) < len(xs) {
		st.buf = make([]int64, len(xs))
	}
	st.buf = append(st.buf[:0], xs...)
}

// Outer carries the router-lane pattern: the closure, not the function, is
// the hot path, annotated at its assignment.
func Outer() func(int) int {
	//robust:hotpath
	lane := func(x int) int { return 2 * x }
	return lane
}

//robust:hotpath
func Unregistered() {} // want `hot path hotpath/a.Unregistered is not registered`
