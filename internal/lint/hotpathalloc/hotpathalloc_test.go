package hotpathalloc_test

import (
	"testing"

	"robustsample/internal/lint/analysistest"
	"robustsample/internal/lint/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	old := hotpathalloc.Golden
	hotpathalloc.Golden = hotpathalloc.ParseGolden(`
# corpus golden list
hotpath/a.Hot bench=HotIngest
hotpath/a.(*state).Amortized
hotpath/a.Outer.lane
hotpath/a.Gone bench=E99
`)
	defer func() { hotpathalloc.Golden = old }()
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hotpath/a")
}

func TestParseGolden(t *testing.T) {
	g := hotpathalloc.ParseGolden("# c\npkg.F bench=A,B\npkg.(*T).M\n\n")
	if len(g) != 2 {
		t.Fatalf("entries = %d, want 2", len(g))
	}
	if b := g["pkg.F"]; len(b) != 2 || b[0] != "A" || b[1] != "B" {
		t.Fatalf("bench names = %v, want [A B]", b)
	}
	if b := g["pkg.(*T).M"]; len(b) != 0 {
		t.Fatalf("bench names = %v, want none", b)
	}
}

func TestRepoGoldenParses(t *testing.T) {
	if len(hotpathalloc.Golden) == 0 {
		t.Fatal("embedded golden.txt parsed to an empty list")
	}
	for name := range hotpathalloc.Golden {
		if name == "" {
			t.Fatal("embedded golden.txt contains an empty entry name")
		}
	}
}
