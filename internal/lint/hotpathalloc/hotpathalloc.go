// Package hotpathalloc guards the 0 allocs/op pins of BENCH.md: functions
// annotated //robust:hotpath (the OfferBatch family, Ring.Push/PushBatch,
// the router batch lanes, the accumulator's AddStreamBatch) are checked for
// constructs that defeat the zero-allocation steady state, and the set of
// annotations is cross-checked against a committed golden list so a new hot
// path cannot appear without registering (and an old one cannot silently
// drop its guard).
//
// Inside an annotated function the analyzer flags:
//
//   - defer and go statements (defers in loops allocate; goroutine launch
//     always does),
//   - function literals (closure allocation at creation),
//   - map literals, map makes, and &composite literals (escape-prone),
//   - make/new outside the guarded-scratch idiom — an `if` whose condition
//     tests cap/len/nil justifies a grow-once allocation, as in
//     `if cap(v.ubuf) < n { v.ubuf = make(...) }`,
//   - append whose result is not assigned back to its own first argument
//     (self-assignment `x = append(x, ...)` is the amortized-zero pattern;
//     anything else allocates per call),
//   - fmt.* and log.* calls (interface boxing plus formatting state),
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - implicit conversions of concrete values to interface parameters or
//     results (boxing).
//
// A flagged construct that is provably cold (a once-per-process fill, an
// open-coded defer required by a shutdown protocol) is suppressed with
// //robust:alloc <reason>, keeping the opt-out audited.
//
// The golden list lives in golden.txt next to this file, one
// "pkgpath.Func" or "pkgpath.(*Recv).Method" per line (closures annotated
// at their assignment register as "pkgpath.EnclosingFunc.varname"); an
// optional trailing "bench=Name1,Name2" maps the entry to robustbench
// -json entry names so cmd/benchdiff can warn when a benchmarked hot path
// is not lint-guarded.
package hotpathalloc

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"robustsample/internal/lint"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//robust:hotpath functions must stay zero-alloc and must be registered in the golden list",
	Run:  run,
}

//go:embed golden.txt
var goldenRaw string

// Golden is the parsed golden list: entry name -> bench names (possibly
// empty). Tests substitute their own list; ParseGolden rebuilds one from a
// golden.txt-format string.
var Golden = ParseGolden(goldenRaw)

// ParseGolden parses golden.txt content: one entry per line, '#' comments,
// optional "bench=a,b" suffix.
func ParseGolden(raw string) map[string][]string {
	out := make(map[string][]string)
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, benches, _ := strings.Cut(line, " ")
		var bs []string
		if b, ok := strings.CutPrefix(strings.TrimSpace(benches), "bench="); ok {
			for _, s := range strings.Split(b, ",") {
				if s = strings.TrimSpace(s); s != "" {
					bs = append(bs, s)
				}
			}
		}
		out[name] = bs
	}
	return out
}

func run(pass *lint.Pass) error {
	seen := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := pass.FuncDirective(fd, "hotpath"); hot {
				name := declName(pass, fd)
				seen[name] = true
				if _, ok := Golden[name]; !ok {
					pass.Reportf(fd.Pos(), "hot path %s is not registered in internal/lint/hotpathalloc/golden.txt — add it so the zero-alloc pin and the benchdiff gate know about it", name)
				}
				checkHot(pass, fd.Body, fd.Name.Name)
			}
			// Annotated closures inside any function (hot or not): the
			// router batch lanes pattern.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				lit, ok := as.Rhs[0].(*ast.FuncLit)
				if !ok {
					return true
				}
				if _, hot := pass.LitDirective(lit, "hotpath"); !hot {
					return true
				}
				id, ok := as.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				name := declName(pass, fd) + "." + id.Name
				seen[name] = true
				if _, ok := Golden[name]; !ok {
					pass.Reportf(lit.Pos(), "hot-path closure %s is not registered in internal/lint/hotpathalloc/golden.txt", name)
				}
				checkHot(pass, lit.Body, id.Name)
				return false // the closure body was just checked; don't re-enter
			})
		}
	}

	// Reverse direction: every golden entry belonging to this package must
	// still exist and carry the annotation, so a hot path cannot shed its
	// guard by deleting the comment.
	prefix := pass.Pkg.Path() + "."
	for name := range Golden {
		if strings.HasPrefix(name, prefix) && !seen[name] && len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package, "golden hot path %s is not annotated //robust:hotpath in this package (stale golden.txt entry, or a dropped annotation)", name)
		}
	}
	return nil
}

// declName renders the golden-list name of fd: pkgpath.Func or
// pkgpath.(*Recv).Method, with generic type parameters stripped.
func declName(pass *lint.Pass, fd *ast.FuncDecl) string {
	pkg := pass.Pkg.Path()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	// Strip type parameters: Reservoir[T] -> Reservoir.
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	base := "?"
	if id, ok := t.(*ast.Ident); ok {
		base = id.Name
	}
	if ptr {
		return fmt.Sprintf("%s.(*%s).%s", pkg, base, fd.Name.Name)
	}
	return fmt.Sprintf("%s.%s.%s", pkg, base, fd.Name.Name)
}

// checkHot walks one hot-path body reporting alloc-prone constructs.
func checkHot(pass *lint.Pass, body *ast.BlockStmt, fname string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if !pass.Suppressed(n.Pos(), "alloc") {
				pass.Reportf(n.Pos(), "defer in hot path %s: defers in loops allocate and all defers add call overhead (//robust:alloc <reason> if this one is open-coded and required)", fname)
			}
		case *ast.GoStmt:
			if !pass.Suppressed(n.Pos(), "alloc") {
				pass.Reportf(n.Pos(), "go statement in hot path %s: goroutine launch allocates", fname)
			}
		case *ast.FuncLit:
			if !pass.Suppressed(n.Pos(), "alloc") {
				pass.Reportf(n.Pos(), "closure in hot path %s: function literals allocate at creation", fname)
			}
			return false
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if !pass.Suppressed(n.Pos(), "alloc") {
					pass.Reportf(n.Pos(), "map literal in hot path %s allocates", fname)
				}
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				if !pass.Suppressed(n.Pos(), "alloc") {
					pass.Reportf(n.Pos(), "&composite literal in hot path %s escapes to the heap", fname)
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.Info.Types[n].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if !pass.Suppressed(n.Pos(), "alloc") {
							pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", fname)
						}
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, fname)
		}
		return true
	})
}

// checkHotCall handles the call-shaped findings: builtin allocators, fmt/log,
// string conversions, and interface-boxing arguments.
func checkHotCall(pass *lint.Pass, call *ast.CallExpr, fname string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "panic":
				// Boxing into panic's any parameter happens only on the
				// invariant-violation path, which is cold by definition.
				return
			case "make", "new":
				if !growGuarded(pass, call) && !pass.Suppressed(call.Pos(), "alloc") {
					pass.Reportf(call.Pos(), "%s in hot path %s allocates per call — guard it with a cap/len/nil check (grow-once scratch) or hoist it out of the hot path", fun.Name, fname)
				}
				return
			case "append":
				if !appendSelfAssigned(pass, call) && !pass.Suppressed(call.Pos(), "alloc") {
					pass.Reportf(call.Pos(), "append in hot path %s whose result is not assigned back to its own slice — per-call growth defeats the zero-alloc pin", fname)
				}
				return
			}
		}
		// Conversions: string(b), []byte(s), []rune(s).
		if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
			checkConversion(pass, call, tv.Type, fname)
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				switch pkg.Imported().Path() {
				case "fmt", "log":
					if !pass.Suppressed(call.Pos(), "alloc") {
						pass.Reportf(call.Pos(), "%s.%s in hot path %s: formatting boxes arguments and allocates", pkg.Imported().Path(), fun.Sel.Name, fname)
					}
					return
				}
			}
		}
	case *ast.ArrayType, *ast.MapType:
		// Conversion spelled with a type expression: []byte(x).
		if tv, ok := pass.Info.Types[call.Fun.(ast.Expr)]; ok && tv.IsType() {
			checkConversion(pass, call, tv.Type, fname)
			return
		}
	}
	checkBoxing(pass, call, fname)
}

// checkConversion flags string<->[]byte/[]rune conversions.
func checkConversion(pass *lint.Pass, call *ast.CallExpr, to types.Type, fname string) {
	if len(call.Args) != 1 {
		return
	}
	from := pass.Info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	if isStringType(to) != isStringType(from) && (isStringType(to) || isStringType(from)) &&
		(isByteOrRuneSlice(to) || isByteOrRuneSlice(from)) {
		if !pass.Suppressed(call.Pos(), "alloc") {
			pass.Reportf(call.Pos(), "conversion %s -> %s in hot path %s copies and allocates", from, to, fname)
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkBoxing flags concrete arguments passed to interface parameters.
func checkBoxing(pass *lint.Pass, call *ast.CallExpr, fname string) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				param = s.Elem()
			}
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.Types[arg]
		if at.Type == nil || at.IsNil() {
			continue
		}
		if _, argIface := at.Type.Underlying().(*types.Interface); argIface {
			continue // already boxed
		}
		if tp, ok := param.(*types.TypeParam); ok {
			_ = tp
			continue // generic instantiation, not boxing
		}
		if !pass.Suppressed(arg.Pos(), "alloc") {
			pass.Reportf(arg.Pos(), "argument %s boxes a concrete %s into interface %s in hot path %s", exprString(pass, arg), at.Type, param, fname)
		}
	}
}

func exprString(pass *lint.Pass, e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}

// growGuarded reports whether a make/new call sits inside an if statement
// whose condition inspects cap, len, or nil — the sanctioned grow-once
// scratch idiom.
func growGuarded(pass *lint.Pass, call *ast.CallExpr) bool {
	ifStmt := enclosingIf(pass, call)
	if ifStmt == nil {
		return false
	}
	guarded := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					guarded = true
				}
			}
		case *ast.Ident:
			if n.Name == "nil" {
				guarded = true
			}
		}
		return true
	})
	return guarded
}

// enclosingIf finds the innermost if statement containing pos within the
// enclosing function body.
func enclosingIf(pass *lint.Pass, call *ast.CallExpr) *ast.IfStmt {
	fd := pass.EnclosingFunc(call.Pos())
	if fd == nil || fd.Body == nil {
		return nil
	}
	var best *ast.IfStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if is, ok := n.(*ast.IfStmt); ok && is.Pos() <= call.Pos() && call.End() <= is.End() {
			best = is
		}
		return true
	})
	return best
}

// appendSelfAssigned reports whether call is the RHS of `x = append(x, ...)`
// or the reset-and-refill form `x = append(x[:0], ...)` (the assignment
// target and the first argument's base are textually identical — both reuse
// x's capacity, so growth is amortized to zero).
func appendSelfAssigned(pass *lint.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	as := enclosingAssign(pass, call)
	if as == nil || len(as.Lhs) == 0 {
		return false
	}
	arg := call.Args[0]
	if se, ok := arg.(*ast.SliceExpr); ok {
		arg = se.X
	}
	// Find which RHS this call is.
	for i, rhs := range as.Rhs {
		if rhs == call {
			if i < len(as.Lhs) {
				return types.ExprString(as.Lhs[i]) == types.ExprString(arg)
			}
		}
	}
	return false
}

func enclosingAssign(pass *lint.Pass, call *ast.CallExpr) *ast.AssignStmt {
	fd := pass.EnclosingFunc(call.Pos())
	if fd == nil || fd.Body == nil {
		return nil
	}
	var best *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				if rhs == call {
					best = as
				}
			}
		}
		return true
	})
	return best
}
