// Package a is the atomicmix corpus: mixed plain/atomic field access and
// 32-bit-misaligned 64-bit atomics are findings; //robust:atomic suppresses
// a provably race-free plain access.
package a

import "sync/atomic"

// Counter mixes access styles on n and carries a misaligned 64-bit field.
type Counter struct {
	pad int32
	n   int64 // 64-bit atomic target at 32-bit offset 4
	ok  int64 // accessed plainly only: no findings
}

// Aligned leads with its 64-bit atomic field, the safe layout.
type Aligned struct {
	n   int64
	pad int32
}

func (c *Counter) Bump() {
	atomic.AddInt64(&c.n, 1) // want `64-bit atomic on field n at 32-bit offset 4`
}

func (c *Counter) Mixed() int64 {
	c.ok++
	return c.n // want `plain access to field n`
}

// Reset runs before the counter is published; the plain store is race-free.
func (c *Counter) Reset() {
	c.n = 0 //robust:atomic pre-publication store in the constructor path
}

func (a *Aligned) Bump() {
	atomic.AddInt64(&a.n, 1)
}

func (a *Aligned) Load() int64 {
	return atomic.LoadInt64(&a.n)
}
