// Package atomicmix enforces the repo's atomic-access contract (DESIGN.md
// "Concurrency contract"): once a struct field is accessed through
// sync/atomic — the Pipeline.applied/routed/lost/epoch pattern — every
// access must be atomic. A single plain read or write of such a field is a
// data race the race detector only catches if a test happens to interleave
// it; this analyzer catches it at compile time.
//
// Two checks per package:
//
//   - mixed access: a field passed by address to a sync/atomic function
//     (Load/Store/Add/Swap/CompareAndSwap...) anywhere in the package must
//     not be read or written plainly anywhere else in the package. A plain
//     access that is provably race-free — in a constructor before the value
//     is published, or under a full quiesce — is suppressed with
//     //robust:atomic <reason>.
//   - alignment: a 64-bit field used with a sync/atomic 64-bit function
//     must be 64-bit aligned under 32-bit struct layout rules (first field,
//     or preceded only by 8-byte-aligned fields) — the class of crash that
//     only manifests on 386/arm. The typed atomic.Int64/Uint64 wrappers
//     carry their own alignment and are exempt; they are also immune to
//     mixed access by construction, so the analyzer's work is the legacy
//     free-function pattern.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"robustsample/internal/lint"
)

// Analyzer is the atomicmix check.
var Analyzer = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed through sync/atomic must never be accessed plainly, and embedded 64-bit atomics must be alignment-safe",
	Run:  run,
}

// atomicFns maps sync/atomic free functions to whether they operate on a
// 64-bit value.
var atomicFns = map[string]bool{
	"LoadInt32": false, "LoadInt64": true, "LoadUint32": false, "LoadUint64": true,
	"LoadUintptr": false, "LoadPointer": false,
	"StoreInt32": false, "StoreInt64": true, "StoreUint32": false, "StoreUint64": true,
	"StoreUintptr": false, "StorePointer": false,
	"AddInt32": false, "AddInt64": true, "AddUint32": false, "AddUint64": true,
	"AddUintptr": false,
	"SwapInt32":  false, "SwapInt64": true, "SwapUint32": false, "SwapUint64": true,
	"SwapUintptr": false, "SwapPointer": false,
	"CompareAndSwapInt32": false, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": false, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": false, "CompareAndSwapPointer": false,
}

func run(pass *lint.Pass) error {
	// Pass 1: find every field object that is the target of a sync/atomic
	// free-function call, and every position of those calls (so pass 2 can
	// exempt the atomic accesses themselves).
	atomicFields := make(map[*types.Var]string) // field -> example op name
	atomicArgPos := make(map[token.Pos]bool)    // &x.f positions inside atomic calls
	align64 := make(map[*types.Var]token.Pos)   // 64-bit atomic fields to alignment-check
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := atomicCallName(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld, ok := fieldOf(pass, sel)
			if !ok {
				return true
			}
			atomicFields[fld] = name
			atomicArgPos[sel.Sel.Pos()] = true
			if atomicFns[name] {
				if _, seen := align64[fld]; !seen {
					align64[fld] = call.Pos()
				}
			}
			return true
		})
	}

	// Pass 2: any other selector touching one of those fields is a plain
	// access. Taking the field's address outside an atomic call is flagged
	// too — an escaped address is how plain accesses sneak in.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld, ok := fieldOf(pass, sel)
			if !ok {
				return true
			}
			op, isAtomic := atomicFields[fld]
			if !isAtomic || atomicArgPos[sel.Sel.Pos()] || pass.Suppressed(sel.Pos(), "atomic") {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic (%s) elsewhere in this package — every access must be atomic", fld.Name(), op)
			return true
		})
	}

	// Pass 3: 32-bit alignment of 64-bit atomic targets. The gc layout
	// on 386/arm aligns uint64 fields to 4 bytes, so a 64-bit atomic on a
	// misaligned field faults; the fix is moving it to the front of the
	// struct (or using atomic.Uint64, which self-aligns).
	sizes32 := types.SizesFor("gc", "386")
	for fld, pos := range align64 {
		st, idx := owningStruct(pass, fld)
		if st == nil {
			continue
		}
		var fields []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			fields = append(fields, st.Field(i))
		}
		offsets := sizes32.Offsetsof(fields)
		if offsets[idx]%8 != 0 {
			pass.Reportf(pos, "64-bit atomic on field %s at 32-bit offset %d: not 8-byte aligned on 386/arm — move it to the front of the struct or use atomic.%s", fld.Name(), offsets[idx], typedAtomicFor(fld))
		}
	}
	return nil
}

// atomicCallName resolves call to a sync/atomic free function name.
func atomicCallName(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, known := atomicFns[sel.Sel.Name]; !known {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldOf resolves sel to a struct field object.
func fieldOf(pass *lint.Pass, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil, false
	}
	return v, true
}

// owningStruct finds the struct type declaring fld and its field index, by
// scanning the package's named types (and their unexported struct fields).
func owningStruct(pass *lint.Pass, fld *types.Var) (*types.Struct, int) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return st, i
			}
		}
	}
	return nil, 0
}

// typedAtomicFor names the typed wrapper matching fld's 64-bit kind.
func typedAtomicFor(fld *types.Var) string {
	t := fld.Type().String()
	if strings.Contains(t, "int64") && !strings.Contains(t, "uint64") {
		return "Int64"
	}
	return "Uint64"
}
