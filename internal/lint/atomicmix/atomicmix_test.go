package atomicmix_test

import (
	"testing"

	"robustsample/internal/lint/analysistest"
	"robustsample/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomicmix/a")
}
