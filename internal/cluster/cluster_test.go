package cluster

import (
	"math"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

func TestCostZeroAtPoints(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	if Cost(pts, pts) != 0 {
		t.Fatal("cost with centers at every point must be 0")
	}
}

func TestCostKnownValue(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}}
	centers := []Point{{0, 0}}
	if c := Cost(pts, centers); c != 4 {
		t.Fatalf("cost = %v, want 4", c)
	}
}

func TestCostPanicsNoCenters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cost([]Point{{0, 0}}, nil)
}

func TestAssignNearest(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {4, 0}}
	centers := []Point{{0, 0}, {10, 0}}
	a := Assign(pts, centers)
	if a[0] != 0 || a[1] != 1 || a[2] != 0 {
		t.Fatalf("assignment %v", a)
	}
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	r := rng.New(1)
	pts := GaussianMixture(3000, 3, 50, r.Split())
	centers := KMeans(pts, 3, 100, r.Split())
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	// Each recovered center must be within 1.5 units of a true blob
	// center (radius 50, unit noise: blobs are far apart).
	for _, c := range centers {
		best := math.Inf(1)
		for j := 0; j < 3; j++ {
			theta := 2 * math.Pi * float64(j) / 3
			true_ := Point{X: 50 * math.Cos(theta), Y: 50 * math.Sin(theta)}
			if d := math.Sqrt(sqDist(c, true_)); d < best {
				best = d
			}
		}
		if best > 1.5 {
			t.Fatalf("center %v is %v away from any true blob", c, best)
		}
	}
}

func TestKMeansCostDecreasesVsRandomCenters(t *testing.T) {
	r := rng.New(2)
	pts := GaussianMixture(1000, 4, 30, r.Split())
	centers := KMeans(pts, 4, 50, r.Split())
	randomCenters := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if Cost(pts, centers) >= Cost(pts, randomCenters) {
		t.Fatal("k-means no better than arbitrary centers")
	}
}

func TestKMeansValidation(t *testing.T) {
	r := rng.New(3)
	for _, f := range []func(){
		func() { KMeans(nil, 2, 10, r) },
		func() { KMeans([]Point{{0, 0}}, 0, 10, r) },
		func() { KMeans([]Point{{0, 0}}, 1, 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	r := rng.New(4)
	pts := []Point{{0, 0}, {5, 5}}
	centers := KMeans(pts, 10, 10, r)
	if len(centers) != 2 {
		t.Fatalf("k should clamp to n, got %d centers", len(centers))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	r := rng.New(5)
	pts := []Point{{3, 3}, {3, 3}, {3, 3}}
	centers := KMeans(pts, 2, 10, r)
	if Cost(pts, centers) != 0 {
		t.Fatal("identical points must have zero cost")
	}
}

func TestCostRatioNearOneWithGoodSample(t *testing.T) {
	r := rng.New(6)
	stream := GaussianMixture(5000, 3, 40, r.Split())
	// Reservoir-sample the stream as the paper's pipeline would.
	res := sampler.NewReservoir[Point](500)
	sr := r.Split()
	for _, p := range stream {
		res.Offer(p, sr)
	}
	ratio := CostRatio(stream, res.View(), 3, 100, r.Split())
	if ratio > 1.15 {
		t.Fatalf("sample-based clustering cost ratio %v too high", ratio)
	}
	if ratio < 0.95 {
		t.Fatalf("ratio %v suspiciously below 1 (full-fit should be at least as good)", ratio)
	}
}

func TestCostRatioDegenerate(t *testing.T) {
	r := rng.New(7)
	pts := []Point{{1, 1}, {1, 1}}
	if ratio := CostRatio(pts, pts, 1, 10, r); ratio != 1 {
		t.Fatalf("degenerate ratio %v, want 1", ratio)
	}
}

func TestGaussianMixtureValidation(t *testing.T) {
	r := rng.New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GaussianMixture(0, 1, 1, r)
}

func TestGaussianMixtureSpread(t *testing.T) {
	r := rng.New(9)
	pts := GaussianMixture(3000, 2, 100, r)
	// Two blobs at angle 0 and pi: x ~ +-100.
	left, right := 0, 0
	for _, p := range pts {
		if p.X > 50 {
			right++
		}
		if p.X < -50 {
			left++
		}
	}
	if left+right < 2900 {
		t.Fatalf("blobs not separated: left=%d right=%d", left, right)
	}
	if left == 0 || right == 0 {
		t.Fatal("all mass in one blob")
	}
}

func BenchmarkKMeans(b *testing.B) {
	r := rng.New(1)
	pts := GaussianMixture(2000, 4, 30, r.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 4, 25, r.Split())
	}
}
