// Package cluster implements the clustering-acceleration application of
// Section 1.2: instead of clustering the full stream, draw a (robust)
// random sample, run the clustering algorithm on the sample, and
// extrapolate — the paper's generic framework for adversarial streams.
//
// The clustering algorithm is Lloyd's k-means with k-means++ seeding over
// points in the plane. The experiment metric is the cost ratio between
// centers fit on the sample (evaluated on the full stream) and centers fit
// on the full stream directly.
package cluster

import (
	"math"

	"robustsample/internal/rng"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

func sqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Cost returns the k-means objective: the sum over points of the squared
// distance to the nearest center. It panics if centers is empty.
func Cost(pts, centers []Point) float64 {
	if len(centers) == 0 {
		panic("cluster: no centers")
	}
	total := 0.0
	for _, p := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			if d := sqDist(p, c); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// Assign returns, for each point, the index of its nearest center.
func Assign(pts, centers []Point) []int {
	if len(centers) == 0 {
		panic("cluster: no centers")
	}
	out := make([]int, len(pts))
	for i, p := range pts {
		best := math.Inf(1)
		for j, c := range centers {
			if d := sqDist(p, c); d < best {
				best = d
				out[i] = j
			}
		}
	}
	return out
}

// seedPlusPlus picks k initial centers by k-means++ sampling.
func seedPlusPlus(pts []Point, k int, r *rng.RNG) []Point {
	centers := make([]Point, 0, k)
	centers = append(centers, pts[r.Intn(len(pts))])
	dists := make([]float64, len(pts))
	for len(centers) < k {
		total := 0.0
		last := centers[len(centers)-1]
		for i, p := range pts {
			d := sqDist(p, last)
			if len(centers) == 1 || d < dists[i] {
				dists[i] = d
			}
			total += dists[i]
		}
		if total == 0 {
			// All points coincide with existing centers; duplicate.
			centers = append(centers, pts[r.Intn(len(pts))])
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		chosen := len(pts) - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				chosen = i
				break
			}
		}
		centers = append(centers, pts[chosen])
	}
	return centers
}

// KMeans runs Lloyd's algorithm with k-means++ seeding until convergence or
// maxIter iterations, returning the centers. It panics on invalid inputs.
func KMeans(pts []Point, k, maxIter int, r *rng.RNG) []Point {
	if len(pts) == 0 {
		panic("cluster: no points")
	}
	if k < 1 {
		panic("cluster: k must be >= 1")
	}
	if k > len(pts) {
		k = len(pts)
	}
	if maxIter < 1 {
		panic("cluster: maxIter must be >= 1")
	}
	centers := seedPlusPlus(pts, k, r)
	assign := make([]int, len(pts))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range pts {
			best := math.Inf(1)
			bestJ := assign[i]
			for j, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
					bestJ = j
				}
			}
			if bestJ != assign[i] {
				assign[i] = bestJ
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty clusters keep their center.
		var sx, sy [64]float64
		var cnt [64]int
		if k > 64 {
			panic("cluster: k too large")
		}
		for i := range sx[:k] {
			sx[i], sy[i], cnt[i] = 0, 0, 0
		}
		for i, p := range pts {
			j := assign[i]
			sx[j] += p.X
			sy[j] += p.Y
			cnt[j]++
		}
		for j := 0; j < k; j++ {
			if cnt[j] > 0 {
				centers[j] = Point{X: sx[j] / float64(cnt[j]), Y: sy[j] / float64(cnt[j])}
			}
		}
	}
	return centers
}

// SampleAndCluster is the paper's pipeline: cluster the provided sample and
// return the centers for use on the full stream.
func SampleAndCluster(sample []Point, k, maxIter int, r *rng.RNG) []Point {
	return KMeans(sample, k, maxIter, r)
}

// CostRatio evaluates the pipeline: it returns
// Cost(stream, centersFromSample) / Cost(stream, centersFromStream).
// Values near 1 mean the sample-based clustering is as good as clustering
// the full data; the ratio is the headline metric of experiment E13.
func CostRatio(stream, sample []Point, k, maxIter int, r *rng.RNG) float64 {
	fromSample := SampleAndCluster(sample, k, maxIter, r.Split())
	fromStream := KMeans(stream, k, maxIter, r.Split())
	num := Cost(stream, fromSample)
	den := Cost(stream, fromStream)
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// GaussianMixture draws n points from k well-separated Gaussian blobs laid
// out on a circle of the given radius with unit component deviation; the
// canonical clusterable workload for E13.
func GaussianMixture(n, k int, radius float64, r *rng.RNG) []Point {
	if n < 1 || k < 1 {
		panic("cluster: need n, k >= 1")
	}
	out := make([]Point, n)
	for i := range out {
		j := r.Intn(k)
		theta := 2 * math.Pi * float64(j) / float64(k)
		out[i] = Point{
			X: radius*math.Cos(theta) + r.NormFloat64(),
			Y: radius*math.Sin(theta) + r.NormFloat64(),
		}
	}
	return out
}
