package distsim

import (
	"math"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
)

func TestClusterRoutingConservesQueries(t *testing.T) {
	r := rng.New(1)
	c := NewCluster(4, r)
	const n = 10000
	for i := 0; i < n; i++ {
		c.Route(int64(i))
	}
	if len(c.Stream()) != n {
		t.Fatalf("stream length %d", len(c.Stream()))
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += len(c.Server(i))
	}
	if total != n {
		t.Fatalf("servers hold %d queries, want %d", total, n)
	}
}

func TestClusterRoutingBalanced(t *testing.T) {
	r := rng.New(2)
	c := NewCluster(5, r)
	const n = 50000
	for i := 0; i < n; i++ {
		c.Route(int64(i))
	}
	want := float64(n) / 5
	for i := 0; i < 5; i++ {
		got := float64(len(c.Server(i)))
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Fatalf("server %d received %v queries, want ~%v", i, got, want)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCluster(1, rng.New(1)) },
		func() { NewCluster(2, rng.New(1)).RouteTo(1, 5) },
		func() { NewCluster(2, rng.New(1)).RouteTo(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUniformWorkloadRepresentative(t *testing.T) {
	r := rng.New(3)
	out := RunUniform(4, 40000, 1<<20, r)
	// Theory: eps ~ sqrt(10 * (ln 2^20 + ln 40) * 4 / n) ~ 0.13; the
	// measured KS should be comfortably below even that.
	predicted := PredictedEps(4, 40000, 20*math.Ln2, 0.1)
	if out.MaxKS > predicted {
		t.Fatalf("uniform workload KS %v exceeds theory %v", out.MaxKS, predicted)
	}
	if out.Workload != "uniform" {
		t.Fatal("workload label wrong")
	}
}

func TestDriftWorkloadStillRepresentative(t *testing.T) {
	// Environmental drift is not adversarial: each server still gets a
	// Bernoulli share, so representativeness holds per Theorem 1.2.
	r := rng.New(4)
	out := RunDrift(4, 40000, 1<<20, r)
	predicted := PredictedEps(4, 40000, 20*math.Ln2, 0.1)
	if out.MaxKS > predicted {
		t.Fatalf("drift workload KS %v exceeds theory %v", out.MaxKS, predicted)
	}
}

func TestAdaptiveAttackBreaksTargetServer(t *testing.T) {
	// Over an unbounded universe, the bisection attack drives server 0's
	// KS toward 1 - 1/K.
	r := rng.New(5)
	k := 8
	out := RunAdaptiveAttack(k, 20000, r)
	want := 1 - 1/float64(k)
	if out.TargetKS < want-0.1 {
		t.Fatalf("attack achieved KS %v, expected ~%v", out.TargetKS, want)
	}
	if out.MaxKS < out.TargetKS {
		t.Fatal("MaxKS below target server's KS")
	}
}

func TestAdaptiveAttackSparesOtherServers(t *testing.T) {
	// The attack sorts the stream so that server 0 holds the smallest
	// elements; other servers receive interleaved large/small elements
	// and historically stay noticeably more representative.
	r := rng.New(6)
	k := 8
	routes := make([]int, 20000)
	_ = routes
	out := RunAdaptiveAttack(k, 20000, r)
	if out.TargetKS <= 0.5 {
		t.Fatalf("target KS %v too small for the attack", out.TargetKS)
	}
}

func TestBoundedAttackCappedByTheory(t *testing.T) {
	// Over a bounded universe the attack exhausts precision; Theorem 1.2
	// with p = 1/K caps the damage at PredictedEps.
	r := rng.New(7)
	k := 4
	n := 40000
	universe := int64(1 << 20)
	out := RunBoundedAdaptiveAttack(k, n, universe, r)
	predicted := PredictedEps(k, n, math.Log(float64(universe)), 0.1)
	if out.TargetKS > predicted {
		t.Fatalf("bounded attack KS %v exceeds Theorem 1.2 cap %v", out.TargetKS, predicted)
	}
}

func TestBoundedVsUnboundedGap(t *testing.T) {
	// The headline of E12: unbounded-universe attack >> bounded-universe
	// attack at the same (k, n).
	r := rng.New(8)
	k, n := 4, 20000
	unbounded := RunAdaptiveAttack(k, n, r.Split())
	bounded := RunBoundedAdaptiveAttack(k, n, 1<<16, r.Split())
	if unbounded.TargetKS < 2*bounded.TargetKS {
		t.Fatalf("expected a wide gap: unbounded %v vs bounded %v",
			unbounded.TargetKS, bounded.TargetKS)
	}
}

func TestPredictedEpsValidation(t *testing.T) {
	for _, f := range []func(){
		func() { PredictedEps(1, 100, 1, 0.1) },
		func() { PredictedEps(2, 0, 1, 0.1) },
		func() { PredictedEps(2, 100, 1, 0) },
		func() { RunAdaptiveAttack(1, 100, rng.New(1)) },
		func() { RunBoundedAdaptiveAttack(1, 100, 1000, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPredictedEpsScaling(t *testing.T) {
	// More servers (thinner per-server sample) => worse guarantee;
	// longer stream => better guarantee.
	if PredictedEps(4, 10000, 10, 0.1) >= PredictedEps(16, 10000, 10, 0.1) {
		t.Fatal("eps should grow with K")
	}
	if PredictedEps(4, 10000, 10, 0.1) <= PredictedEps(4, 100000, 10, 0.1) {
		t.Fatal("eps should shrink with n")
	}
}

func BenchmarkRouting(b *testing.B) {
	r := rng.New(1)
	c := NewCluster(8, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Route(int64(i))
	}
}

func BenchmarkAdaptiveAttack(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunAdaptiveAttack(8, 5000, r.Split())
	}
}

func TestCoordinatorGlobalSampleRepresentative(t *testing.T) {
	// Per-server reservoirs merged by the coordinator must form a
	// representative sample of the union stream ([CTW16]-style pipeline).
	r := rng.New(20)
	co := NewCoordinator(4, 1000, r)
	const n = 20000
	for i := 0; i < n; i++ {
		co.Route(1 + r.Int63n(1<<20))
	}
	global := co.GlobalSample(2000, r)
	if len(global) != 2000 {
		t.Fatalf("global sample size %d", len(global))
	}
	if ks := statsKS(co.Cluster().Stream(), global); ks > 0.06 {
		t.Fatalf("merged global sample KS %v too large", ks)
	}
}

func TestCoordinatorInclusionBalance(t *testing.T) {
	// Elements routed to different servers must appear in the global
	// sample at equal rates: tag queries by parity and compare.
	root := rng.New(21)
	const n = 8000
	const trials = 30
	low := 0
	total := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		co := NewCoordinator(3, 600, r)
		for i := 0; i < n; i++ {
			co.Route(int64(i))
		}
		for _, v := range co.GlobalSample(300, r) {
			total++
			if v < n/2 {
				low++
			}
		}
	}
	frac := float64(low) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("first-half fraction %v, want ~0.5", frac)
	}
}

func TestCoordinatorGlobalSampleClamped(t *testing.T) {
	r := rng.New(22)
	co := NewCoordinator(2, 10, r)
	for i := 0; i < 5; i++ {
		co.Route(int64(i))
	}
	g := co.GlobalSample(100, r)
	if len(g) != 5 {
		t.Fatalf("should clamp to available elements, got %d", len(g))
	}
}

func TestCoordinatorGlobalVerdictMatchesOneShot(t *testing.T) {
	// The coordinator's merged verdict (Accumulator.MergeFrom over the
	// per-server accumulators) must equal the one-shot MaxDiscrepancy on
	// the full stream against the union of the reservoirs, bit for bit.
	r := rng.New(23)
	co := NewCoordinator(4, 500, r)
	for i := 0; i < 20000; i++ {
		co.Route(1 + r.Int63n(1<<20))
	}
	got := co.GlobalVerdict()
	sys := setsystem.NewPrefixes(math.MaxInt64)
	want := sys.MaxDiscrepancy(co.Cluster().Stream(), co.Cluster().Engine().Sample())
	if got != want {
		t.Fatalf("merged verdict %+v, one-shot %+v", got, want)
	}
	// 2000 pooled reservoir slots over a benign stream: the union sample
	// should be comfortably representative.
	if got.Err > 0.1 {
		t.Fatalf("benign union sample unexpectedly unrepresentative: %v", got.Err)
	}
}
