// Package distsim simulates the distributed-database illustration of
// Section 1.2: a stream of queries is load-balanced uniformly at random
// across K query-processing servers, so each server's substream is a
// Bernoulli(1/K) sample of the full stream. The question the paper raises —
// "is random sampling a risk in modern data processing systems?" — becomes:
// how unrepresentative can an adaptive client make one server's view of the
// workload?
//
// The simulation runs on the general sharded engine (internal/shard): a
// Cluster is a routing-only engine recording per-server substreams, and a
// Coordinator attaches per-server reservoirs and answers global queries
// through the engine's [CTW16]/[CMYZ12] primitives — MergeSamples for a
// uniform union sample, merged accumulators (GlobalVerdict) for exact union
// discrepancies without re-reading any substream.
//
// The package measures per-server representativeness as the Kolmogorov-
// Smirnov (prefix-system) distance between the server's substream and the
// full stream, under three workloads:
//
//   - uniform static queries (the benign baseline),
//   - a drifting distribution (environmental change without adversarial
//     intent), and
//   - the Figure-3 bisection attack aimed at one server, using that
//     server's routing outcomes as the admission channel. Over an
//     unbounded query universe the attack drives the target server's KS
//     distance toward 1 - 1/K; over a bounded (hash-discretized) universe
//     Theorem 1.2 with p = 1/K caps it — the experiment's punchline.
package distsim

import (
	"math"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/shard"
	"robustsample/internal/stats"
)

// Cluster is a set of K servers receiving a routed query stream: a
// routing-only (or, via NewCoordinator, sampler-carrying) view over a
// sharded engine with uniform routing and raw substream recording.
type Cluster struct {
	// K is the number of servers.
	K int

	eng *shard.Engine
}

// NewCluster returns an empty cluster of k servers whose routing draws from
// streams split off r. It panics unless k >= 2.
func NewCluster(k int, r *rng.RNG) *Cluster {
	if k < 2 {
		panic("distsim: need at least 2 servers")
	}
	return &Cluster{K: k, eng: shard.New(shard.Config{
		Shards:        k,
		Router:        shard.Uniform{},
		RecordStreams: true,
	}, r)}
}

// newCoordinatorCluster is NewCluster with per-server reservoirs attached.
func newCoordinatorCluster(k, localCapacity int, r *rng.RNG) *Cluster {
	if k < 2 {
		panic("distsim: need at least 2 servers")
	}
	return &Cluster{K: k, eng: shard.New(shard.Config{
		Shards: k,
		Router: shard.Uniform{},
		// Queries are arbitrary int64 keys; the universe only bounds
		// verdict witnesses.
		System: setsystem.NewPrefixes(math.MaxInt64),
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](localCapacity)
		},
		RecordStreams: true,
	}, r)}
}

// Route assigns query x to a uniformly random server and returns its index.
func (c *Cluster) Route(x int64) int {
	s, _ := c.eng.Offer(x)
	return s
}

// RouteTo records query x at the given server (used when the routing
// decision is produced externally, e.g. by the attack runner).
func (c *Cluster) RouteTo(x int64, server int) {
	if server < 0 || server >= c.K {
		panic("distsim: server index out of range")
	}
	c.eng.RouteTo(x, server)
}

// Engine exposes the underlying sharded engine.
func (c *Cluster) Engine() *shard.Engine { return c.eng }

// Stream returns the full query stream.
func (c *Cluster) Stream() []int64 { return c.eng.Stream() }

// Server returns server i's substream.
func (c *Cluster) Server(i int) []int64 { return c.eng.Substream(i) }

// ServerKS returns the KS (prefix-system) distance between server i's
// substream and the full stream; 0 is perfectly representative.
func (c *Cluster) ServerKS(i int) float64 {
	return stats.KSDistanceInt64(c.eng.Stream(), c.eng.Substream(i))
}

// MaxKS returns the worst per-server KS distance.
func (c *Cluster) MaxKS() float64 {
	worst := 0.0
	for i := 0; i < c.K; i++ {
		if d := c.ServerKS(i); d > worst {
			worst = d
		}
	}
	return worst
}

// PredictedEps inverts the Theorem 1.2 Bernoulli bound for routing rate
// p = 1/K: the eps at which a server's substream is guaranteed (with
// probability 1-delta) to be an eps-approximation over a universe with
// log-cardinality logCard:
//
//	eps = sqrt( 10 (ln|R| + ln(4/delta)) * K / n ).
func PredictedEps(k, n int, logCard, delta float64) float64 {
	if k < 2 || n < 1 {
		panic("distsim: bad cluster parameters")
	}
	if delta <= 0 || delta >= 1 {
		panic("distsim: bad delta")
	}
	return math.Sqrt(10 * (logCard + math.Log(4/delta)) * float64(k) / float64(n))
}

// Outcome reports one simulated workload.
type Outcome struct {
	// Workload labels the scenario in tables.
	Workload string
	// N is the stream length, K the number of servers.
	N, K int
	// TargetKS is server 0's KS distance (the attacked server when the
	// workload is adversarial).
	TargetKS float64
	// MaxKS is the worst KS distance across servers.
	MaxKS float64
}

// RunUniform routes n i.i.d. uniform queries over [1, universe].
func RunUniform(k, n int, universe int64, r *rng.RNG) Outcome {
	c := NewCluster(k, r)
	for i := 0; i < n; i++ {
		c.Route(1 + r.Int63n(universe))
	}
	return Outcome{Workload: "uniform", N: n, K: k, TargetKS: c.ServerKS(0), MaxKS: c.MaxKS()}
}

// RunDrift routes n queries whose distribution drifts linearly across the
// universe over time (a non-adversarial environmental change): query i is
// uniform over a window centered at (i/n)*universe.
func RunDrift(k, n int, universe int64, r *rng.RNG) Outcome {
	c := NewCluster(k, r)
	window := universe / 10
	if window < 1 {
		window = 1
	}
	for i := 0; i < n; i++ {
		center := int64(float64(i) / float64(n) * float64(universe))
		lo := center - window/2
		if lo < 1 {
			lo = 1
		}
		hi := lo + window
		if hi > universe {
			hi = universe
		}
		c.Route(lo + r.Int63n(hi-lo+1))
	}
	return Outcome{Workload: "drift", N: n, K: k, TargetKS: c.ServerKS(0), MaxKS: c.MaxKS()}
}

// Coordinator models the distributed-sampling architecture of [CTW16] /
// [CMYZ12] (paper Section 1.3): every server maintains a local reservoir
// over its substream, and a coordinator merges the local samples into a
// uniform sample of the union stream to answer global queries without
// shipping raw substreams.
type Coordinator struct {
	c *Cluster
}

// NewCoordinator attaches per-server reservoirs of the given capacity to a
// fresh cluster of k servers seeded from r.
func NewCoordinator(k, localCapacity int, r *rng.RNG) *Coordinator {
	return &Coordinator{c: newCoordinatorCluster(k, localCapacity, r)}
}

// Route forwards a query to a uniformly random server, which folds it into
// its local reservoir.
func (co *Coordinator) Route(x int64) {
	co.c.eng.Offer(x)
}

// Cluster exposes the underlying cluster (full stream, substreams).
func (co *Coordinator) Cluster() *Cluster { return co.c }

// GlobalSample merges the per-server reservoirs into a uniform sample of
// size k of the union stream, by pairwise population-weighted merging
// (sampler.MergeSamples via the engine).
func (co *Coordinator) GlobalSample(k int, r *rng.RNG) []int64 {
	return co.c.eng.GlobalSample(k, r)
}

// GlobalVerdict returns the exact prefix-system discrepancy of the union of
// the per-server reservoirs against the union stream, computed by folding
// the per-server accumulators (Accumulator.MergeFrom) — no substream is
// re-read.
func (co *Coordinator) GlobalVerdict() setsystem.Discrepancy {
	return co.c.eng.Verdict()
}

// RunAdaptiveAttack runs the Figure-3 bisection attack against server 0
// over an unbounded query universe: the adaptive client observes which
// server each query landed on (admission = "landed on server 0") and
// chooses the next query accordingly. Routing stays uniformly random; only
// the queries are adversarial.
func RunAdaptiveAttack(k, n int, r *rng.RNG) Outcome {
	if k < 2 {
		panic("distsim: need at least 2 servers")
	}
	routes := make([]int, n)
	res := adversary.RunExactBisectionFunc(n, func(round int) bool {
		s := r.Intn(k)
		routes[round-1] = s
		return s == 0
	})
	c := NewCluster(k, r)
	for i, x := range res.Stream {
		c.RouteTo(x, routes[i])
	}
	return Outcome{Workload: "adaptive-attack", N: n, K: k, TargetKS: c.ServerKS(0), MaxKS: c.MaxKS()}
}

// RunBoundedAdaptiveAttack runs the same adaptive client but over the
// bounded universe [1, universe] using the int64 bisection adversary; when
// the attack exhausts its precision (as Theorem 1.2 predicts it must for
// small universes), the client keeps submitting boundary values. This is
// the "hash-discretized queries" defense row of experiment E12.
func RunBoundedAdaptiveAttack(k, n int, universe int64, r *rng.RNG) Outcome {
	if k < 2 {
		panic("distsim: need at least 2 servers")
	}
	pp := math.Max(1/float64(k), math.Log(float64(n))/float64(n))
	if pp >= 1 {
		pp = 0.5
	}
	bi := adversary.NewBisection(universe, pp)
	bi.Reset()
	c := NewCluster(k, r)
	lastAdmitted := false
	var history []int64
	for i := 1; i <= n; i++ {
		obs := game.Observation{Round: i, N: n, History: history, LastAdmitted: lastAdmitted}
		x := bi.Next(obs, r)
		history = append(history, x)
		lastAdmitted = c.Route(x) == 0
	}
	return Outcome{Workload: "bounded-attack", N: n, K: k, TargetKS: c.ServerKS(0), MaxKS: c.MaxKS()}
}
