package distsim

import "robustsample/internal/stats"

// statsKS is a test shim over the stats package.
func statsKS(stream, sample []int64) float64 {
	return stats.KSDistanceInt64(stream, sample)
}
