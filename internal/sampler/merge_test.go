package sampler

import (
	"math"
	"testing"

	"robustsample/internal/rng"
)

func TestMergeSamplesUniformComposition(t *testing.T) {
	// Population A = {0..9} (fully sampled), population B = {10..19}
	// (fully sampled). A merged 10-subset must include each element with
	// probability exactly 1/2.
	const trials = 40000
	root := rng.New(1)
	counts := make([]int, 20)
	a := make([]int, 10)
	b := make([]int, 10)
	for i := range a {
		a[i] = i
		b[i] = i + 10
	}
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		out := MergeSamples(a, 10, b, 10, 10, r)
		if len(out) != 10 {
			t.Fatalf("merge size %d", len(out))
		}
		for _, v := range out {
			counts[v]++
		}
	}
	want := float64(trials) / 2
	sd := math.Sqrt(want / 2)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("element %d included %d times, want ~%v", v, c, want)
		}
	}
}

func TestMergeSamplesProportionalToPopulations(t *testing.T) {
	// Population A has nA = 1000 represented by 100 sampled elements;
	// population B has nB = 500 with 100 sampled. A merged element comes
	// from A with probability nA/(nA+nB) = 2/3.
	const trials = 30000
	root := rng.New(2)
	fromA := 0
	a := make([]int, 100)
	b := make([]int, 100)
	for i := range a {
		a[i] = 1 // marker A
		b[i] = 2 // marker B
	}
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		out := MergeSamples(a, 1000, b, 500, 1, r)
		if out[0] == 1 {
			fromA++
		}
	}
	got := float64(fromA) / trials
	if math.Abs(got-2.0/3) > 0.01 {
		t.Fatalf("P[from A] = %v, want 2/3", got)
	}
}

func TestMergeSamplesNoDuplicateConsumption(t *testing.T) {
	r := rng.New(3)
	a := []int{1, 2, 3}
	b := []int{4, 5}
	out := MergeSamples(a, 3, b, 2, 5, r)
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("element %d drawn twice", v)
		}
		seen[v] = true
	}
	if len(out) != 5 {
		t.Fatalf("size %d", len(out))
	}
}

func TestMergeSamplesClampsToPopulation(t *testing.T) {
	r := rng.New(4)
	out := MergeSamples([]int{1}, 1, []int{2}, 1, 10, r)
	if len(out) != 2 {
		t.Fatalf("should clamp to total population, got %d", len(out))
	}
}

func TestMergeSamplesDoesNotMutateInputs(t *testing.T) {
	r := rng.New(5)
	a := []int{1, 2, 3}
	b := []int{4, 5, 6}
	MergeSamples(a, 3, b, 3, 4, r)
	if a[0] != 1 || a[1] != 2 || a[2] != 3 || b[0] != 4 {
		t.Fatal("inputs mutated")
	}
}

func TestMergeSamplesValidation(t *testing.T) {
	r := rng.New(6)
	for _, f := range []func(){
		func() { MergeSamples([]int{1, 2}, 1, nil, 0, 1, r) },
		func() { MergeSamples([]int{1}, 1, []int{2}, 1, -1, r) },
		func() { MergeSamples([]int{1}, 100, []int{2}, 100, 50, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMergeReservoirsEndToEnd(t *testing.T) {
	// Two reservoirs over disjoint streams; the merged sample must be a
	// near-uniform sample of the union. Check inclusion balance of the
	// two halves.
	const nA, nB, k = 3000, 1000, 60
	const trials = 3000
	root := rng.New(7)
	fromA := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		ra := NewReservoir[int](200)
		rb := NewReservoir[int](200)
		for i := 0; i < nA; i++ {
			ra.Offer(i, r)
		}
		for i := 0; i < nB; i++ {
			rb.Offer(nA+i, r)
		}
		merged := MergeReservoirs(ra, rb, k, r)
		if len(merged) != k {
			t.Fatalf("merged size %d", len(merged))
		}
		for _, v := range merged {
			if v < nA {
				fromA++
			}
		}
	}
	got := float64(fromA) / float64(trials*k)
	want := float64(nA) / (nA + nB)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("fraction from A = %v, want %v", got, want)
	}
}

func BenchmarkMergeReservoirs(b *testing.B) {
	r := rng.New(1)
	ra := NewReservoir[int64](1000)
	rb := NewReservoir[int64](1000)
	for i := int64(0); i < 50000; i++ {
		ra.Offer(i, r)
		rb.Offer(i+50000, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeReservoirs(ra, rb, 500, r)
	}
}

func TestMergeSamplesKZero(t *testing.T) {
	r := rng.New(8)
	out := MergeSamples([]int{1, 2}, 5, []int{3}, 4, 0, r)
	if len(out) != 0 {
		t.Fatalf("k=0 should yield an empty sample, got %v", out)
	}
	if out == nil {
		t.Fatal("k=0 should yield an empty non-nil sample")
	}
}

func TestMergeSamplesOneSideEmpty(t *testing.T) {
	// An empty side with a zero population contributes nothing; the merge
	// must reduce to a uniform subsample of the other side.
	root := rng.New(9)
	const trials = 20000
	counts := make([]int, 4)
	a := []int{0, 1, 2, 3}
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		out := MergeSamples(a, 4, nil, 0, 2, r)
		if len(out) != 2 {
			t.Fatalf("size %d, want 2", len(out))
		}
		if out[0] == out[1] {
			t.Fatalf("duplicate element %d", out[0])
		}
		for _, v := range out {
			counts[v]++
		}
	}
	want := float64(trials) / 2
	sd := math.Sqrt(want / 2)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("element %d included %d times, want ~%v", v, c, want)
		}
	}
	// Symmetric: empty side first.
	out := MergeSamples(nil, 0, a, 4, 3, rng.New(10))
	if len(out) != 3 {
		t.Fatalf("size %d, want 3", len(out))
	}
}

func TestMergeSamplesKEqualsUnionSize(t *testing.T) {
	// k equal to the full union: every sampled element must appear
	// exactly once, regardless of the interleaving order.
	r := rng.New(11)
	a := []int{1, 2, 3}
	b := []int{4, 5, 6, 7}
	out := MergeSamples(a, 3, b, 4, 7, r)
	if len(out) != 7 {
		t.Fatalf("size %d, want 7", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("element %d drawn twice", v)
		}
		seen[v] = true
	}
	for v := 1; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("element %d missing from full-union merge", v)
		}
	}
}

func TestMergeSamplesPopulationEqualsSample(t *testing.T) {
	// Fully-observed populations (nA == len(sampleA), nB == len(sampleB)):
	// the merge is then an exact uniform k-subset of the union, so each
	// element's inclusion probability is k / (nA + nB) even when the sides
	// are unbalanced.
	root := rng.New(12)
	const trials = 30000
	a := []int{0, 1, 2, 3, 4, 5}
	b := []int{6, 7}
	counts := make([]int, 8)
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		for _, v := range MergeSamples(a, 6, b, 2, 4, r) {
			counts[v]++
		}
	}
	want := float64(trials) / 2 // k/(nA+nB) = 4/8
	sd := math.Sqrt(want / 2)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("element %d included %d times, want ~%v", v, c, want)
		}
	}
}
