package sampler_test

import (
	"fmt"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

// Two sites each hold a uniform sample of their local substream; the
// coordinator combines them into a uniform sample of the union without ever
// seeing the raw streams — the [CTW16]/[CMYZ12] primitive behind the
// sharded engine's GlobalSample.
func ExampleMergeSamples() {
	r := rng.New(1)

	// Site A saw 1000 elements and sampled 4 of them; site B saw 3000
	// and sampled 4. A merged element should come from B three times as
	// often as from A.
	siteA := []string{"a1", "a2", "a3", "a4"}
	siteB := []string{"b1", "b2", "b3", "b4"}
	merged := sampler.MergeSamples(siteA, 1000, siteB, 3000, 4, r)
	fmt.Println("merged size:", len(merged))

	fromB := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		for _, v := range sampler.MergeSamples(siteA, 1000, siteB, 3000, 1, r) {
			if v[0] == 'b' {
				fromB++
			}
		}
	}
	fmt.Printf("fraction from B: %.2f (want 0.75)\n", float64(fromB)/trials)
	// Output:
	// merged size: 4
	// fraction from B: 0.75 (want 0.75)
}
