package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
)

func TestBernoulliRate(t *testing.T) {
	r := rng.New(1)
	b := NewBernoulli[int64](0.1)
	const n = 100000
	for i := int64(0); i < n; i++ {
		b.Offer(i, r)
	}
	got := float64(b.Len()) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("sample rate %v, want ~0.1", got)
	}
	if b.Rounds() != n {
		t.Fatalf("rounds = %d", b.Rounds())
	}
}

func TestBernoulliEdgeRates(t *testing.T) {
	r := rng.New(2)
	b0 := NewBernoulli[int](0)
	b1 := NewBernoulli[int](1)
	for i := 0; i < 100; i++ {
		if b0.Offer(i, r) {
			t.Fatal("p=0 admitted an element")
		}
		if !b1.Offer(i, r) {
			t.Fatal("p=1 rejected an element")
		}
	}
	if b0.Len() != 0 || b1.Len() != 100 {
		t.Fatal("sizes wrong at edge rates")
	}
}

func TestBernoulliPanicsOnBadRate(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBernoulli(%v) did not panic", p)
				}
			}()
			NewBernoulli[int](p)
		}()
	}
}

func TestBernoulliReset(t *testing.T) {
	r := rng.New(3)
	b := NewBernoulli[int](1)
	b.Offer(1, r)
	b.Reset()
	if b.Len() != 0 || b.Rounds() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestBernoulliSampleIsCopy(t *testing.T) {
	r := rng.New(4)
	b := NewBernoulli[int](1)
	b.Offer(7, r)
	s := b.Sample()
	s[0] = 99
	if b.View()[0] != 7 {
		t.Fatal("Sample aliases internal state")
	}
}

func TestReservoirCapacity(t *testing.T) {
	r := rng.New(5)
	v := NewReservoir[int64](10)
	for i := int64(0); i < 1000; i++ {
		v.Offer(i, r)
		if v.Len() > 10 {
			t.Fatal("reservoir exceeded capacity")
		}
	}
	if v.Len() != 10 {
		t.Fatalf("final size %d, want 10", v.Len())
	}
	if v.Rounds() != 1000 {
		t.Fatal("round counter wrong")
	}
}

func TestReservoirPrefixKeptWhole(t *testing.T) {
	r := rng.New(6)
	v := NewReservoir[int64](5)
	for i := int64(1); i <= 5; i++ {
		if !v.Offer(i, r) {
			t.Fatal("first k elements must all be admitted")
		}
	}
	got := SortedCopy(v.View())
	for i, x := range got {
		if x != int64(i+1) {
			t.Fatalf("prefix not stored verbatim: %v", got)
		}
	}
}

func TestReservoirUniformInclusion(t *testing.T) {
	// Each of n elements must end up in the final sample with
	// probability exactly k/n; check empirically per position. This is
	// the defining property of Algorithm R.
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	root := rng.New(7)
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoir[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
		}
		for _, x := range v.View() {
			counts[x]++
		}
	}
	want := float64(trials) * k / n
	sd := math.Sqrt(want * (1 - float64(k)/n))
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 5*sd {
			t.Fatalf("position %d included %d times, want %v +/- %v", pos, c, want, 5*sd)
		}
	}
}

func TestReservoirAdmissionProbability(t *testing.T) {
	// Element i (1-based, i > k) is admitted with probability k/i.
	const k = 4
	const i = 10
	const trials = 60000
	root := rng.New(8)
	admitted := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoir[int](k)
		for j := 1; j < i; j++ {
			v.Offer(j, r)
		}
		if v.Offer(i, r) {
			admitted++
		}
	}
	got := float64(admitted) / trials
	want := float64(k) / float64(i)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("admission rate %v, want %v", got, want)
	}
}

func TestReservoirTotalAdmitted(t *testing.T) {
	// E[k'] = k + sum_{i>k} k/i ~= k(1 + ln(n/k)); Section 5 uses the
	// cruder bound E[k'] <= 2k ln n. Check the measured mean respects it.
	const n, k, trials = 2000, 10, 200
	root := rng.New(9)
	total := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoir[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
		}
		total += v.TotalAdmitted()
	}
	mean := float64(total) / trials
	upper := 2 * float64(k) * math.Log(n)
	if mean > upper {
		t.Fatalf("mean admitted %v exceeds 2k ln n = %v", mean, upper)
	}
	if mean < float64(k) {
		t.Fatalf("mean admitted %v below k", mean)
	}
}

func TestReservoirPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReservoir(0) did not panic")
		}
	}()
	NewReservoir[int](0)
}

func TestReservoirReset(t *testing.T) {
	r := rng.New(10)
	v := NewReservoir[int](3)
	for i := 0; i < 10; i++ {
		v.Offer(i, r)
	}
	v.Reset()
	if v.Len() != 0 || v.Rounds() != 0 || v.TotalAdmitted() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestReservoirNeverExceedsCapacityProperty(t *testing.T) {
	root := rng.New(11)
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw) + 1
		r := root.Split()
		v := NewReservoir[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
			if v.Len() > k || v.Len() > v.Rounds() {
				return false
			}
		}
		want := n
		if k < n {
			want = k
		}
		return v.Len() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSampleSubsetOfStream(t *testing.T) {
	root := rng.New(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw) + 1
		r := root.Split()
		v := NewReservoir[int64](7)
		seen := make(map[int64]bool)
		for i := 0; i < n; i++ {
			x := int64(i * 3)
			seen[x] = true
			v.Offer(x, r)
		}
		for _, x := range v.View() {
			if !seen[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedReservoirFavorsHeavy(t *testing.T) {
	// One element has weight 50, the rest weight 1; the heavy element
	// should be present in the sample almost always.
	const trials = 2000
	root := rng.New(13)
	present := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		w := NewWeightedReservoir[int](5)
		for i := 0; i < 100; i++ {
			weight := 1.0
			if i == 37 {
				weight = 50
			}
			w.Offer(i, weight, r)
		}
		for _, x := range w.View() {
			if x == 37 {
				present++
				break
			}
		}
	}
	if rate := float64(present) / trials; rate < 0.85 {
		t.Fatalf("heavy element present only %v of the time", rate)
	}
}

func TestWeightedReservoirUniformWhenEqualWeights(t *testing.T) {
	// With equal weights, inclusion should be (close to) uniform k/n.
	const n, k, trials = 20, 5, 30000
	counts := make([]int, n)
	root := rng.New(14)
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		w := NewWeightedReservoir[int](k)
		for i := 0; i < n; i++ {
			w.Offer(i, 1, r)
		}
		for _, x := range w.View() {
			counts[x]++
		}
	}
	want := float64(trials) * k / n
	sd := math.Sqrt(want)
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("position %d count %d, want ~%v", pos, c, want)
		}
	}
}

func TestWeightedReservoirRejectsBadWeights(t *testing.T) {
	r := rng.New(15)
	w := NewWeightedReservoir[int](3)
	if w.Offer(1, 0, r) || w.Offer(2, -1, r) || w.Offer(3, math.NaN(), r) {
		t.Fatal("non-positive weight admitted")
	}
	if w.Len() != 0 {
		t.Fatal("bad-weight elements stored")
	}
}

func TestWeightedReservoirCapacityAndReset(t *testing.T) {
	r := rng.New(16)
	w := NewWeightedReservoir[int](4)
	for i := 0; i < 100; i++ {
		w.Offer(i, 1, r)
		if w.Len() > 4 {
			t.Fatal("capacity exceeded")
		}
	}
	w.Reset()
	if w.Len() != 0 || w.Rounds() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWeightedReservoirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeightedReservoir[int](0)
}

func TestWithReplacementFirstFillsAll(t *testing.T) {
	r := rng.New(17)
	s := NewWithReplacement[int64](8)
	if s.Len() != 0 || s.View() != nil {
		t.Fatal("pre-stream state should be empty")
	}
	s.Offer(42, r)
	if s.Len() != 8 {
		t.Fatal("first element should fill all slots")
	}
	for _, x := range s.View() {
		if x != 42 {
			t.Fatal("slots not initialized to first element")
		}
	}
}

func TestWithReplacementUniformSlots(t *testing.T) {
	// Each slot is an independent uniform sample: slot 0 should hold
	// element i with probability 1/n for each i.
	const n, trials = 10, 40000
	counts := make([]int, n)
	root := rng.New(18)
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		s := NewWithReplacement[int](3)
		for i := 0; i < n; i++ {
			s.Offer(i, r)
		}
		counts[s.View()[0]]++
	}
	want := float64(trials) / n
	sd := math.Sqrt(want)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("slot held element %d %d times, want ~%v", i, c, want)
		}
	}
}

func TestWithReplacementReset(t *testing.T) {
	r := rng.New(19)
	s := NewWithReplacement[int](2)
	s.Offer(5, r)
	s.Reset()
	if s.Len() != 0 || s.Rounds() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWithReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWithReplacement[int](0)
}

func TestSortedCopy(t *testing.T) {
	in := []int64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("not sorted: %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}

func BenchmarkBernoulliOffer(b *testing.B) {
	r := rng.New(1)
	s := NewBernoulli[int64](0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), r)
	}
}

func BenchmarkReservoirOffer(b *testing.B) {
	r := rng.New(1)
	s := NewReservoir[int64](1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), r)
	}
}

func BenchmarkWeightedReservoirOffer(b *testing.B) {
	r := rng.New(1)
	s := NewWeightedReservoir[int64](1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), 1+float64(i%7), r)
	}
}

func BenchmarkWithReplacementOffer(b *testing.B) {
	r := rng.New(1)
	s := NewWithReplacement[int64](1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), r)
	}
}
