package sampler

import (
	"fmt"

	"robustsample/internal/snapshot"
)

// This file implements deterministic binary snapshots of the int64 sampler
// instantiations (the ones the adversarial games and the public sketch
// surface run on), plus the exported state hooks the public packages use
// for merging. Framing (magic/version/kind) belongs to the caller; each
// codec here encodes exactly one sampler's raw state, so codecs compose —
// the sharded engine concatenates per-shard sampler and accumulator
// snapshots into one frame.
//
// Restoring replaces the receiver's full state, configuration included
// (capacity, rate): a snapshot is a checkpoint, not a patch. The pending
// LastDelta of the snapshotted sampler is NOT carried over — deltas
// describe the most recent Offer and a restored sampler has not offered
// anything yet.

// Snapshot kind bytes, used by composite codecs (the sharded engine) and
// the public sketch framing to tag which sampler state follows.
const (
	KindBernoulli       = 1
	KindReservoir       = 2
	KindReservoirL      = 3
	KindWithReplacement = 4
	KindWeighted        = 5
)

// SamplerKind returns the snapshot kind byte for a supported sampler, or 0
// for types without a snapshot codec.
func SamplerKind(s any) byte {
	switch s.(type) {
	case *Bernoulli[int64]:
		return KindBernoulli
	case *Reservoir[int64]:
		return KindReservoir
	case *ReservoirL[int64]:
		return KindReservoirL
	case *WithReplacement[int64]:
		return KindWithReplacement
	case *WeightedReservoir[int64]:
		return KindWeighted
	}
	return 0
}

// AppendState appends the snapshot of a supported int64 sampler, prefixed
// with its kind byte. It fails for sampler types without a codec.
func AppendState(buf []byte, s any) ([]byte, error) {
	switch v := s.(type) {
	case *Bernoulli[int64]:
		return AppendBernoulliState(append(buf, KindBernoulli), v), nil
	case *Reservoir[int64]:
		return AppendReservoirState(append(buf, KindReservoir), v), nil
	case *ReservoirL[int64]:
		return AppendReservoirLState(append(buf, KindReservoirL), v), nil
	case *WithReplacement[int64]:
		return AppendWithReplacementState(append(buf, KindWithReplacement), v), nil
	case *WeightedReservoir[int64]:
		return AppendWeightedState(append(buf, KindWeighted), v), nil
	}
	return nil, fmt.Errorf("sampler: no snapshot codec for %T", s)
}

// LoadState restores a kind-prefixed snapshot (as written by AppendState)
// into s, which must be the matching sampler type.
func LoadState(r *snapshot.Reader, s any) error {
	kind := r.Byte()
	if err := r.Err(); err != nil {
		return err
	}
	if want := SamplerKind(s); want == 0 || kind != want {
		return fmt.Errorf("sampler: snapshot kind %d does not match sampler %T: %w", kind, s, snapshot.ErrCorrupt)
	}
	switch v := s.(type) {
	case *Bernoulli[int64]:
		return LoadBernoulliState(r, v)
	case *Reservoir[int64]:
		return LoadReservoirState(r, v)
	case *ReservoirL[int64]:
		return LoadReservoirLState(r, v)
	case *WithReplacement[int64]:
		return LoadWithReplacementState(r, v)
	case *WeightedReservoir[int64]:
		return LoadWeightedState(r, v)
	}
	return fmt.Errorf("sampler: no snapshot codec for %T", s)
}

// AppendBernoulliState appends b's raw state.
func AppendBernoulliState(buf []byte, b *Bernoulli[int64]) []byte {
	buf = snapshot.AppendFloat64(buf, b.P)
	buf = snapshot.AppendInt64(buf, int64(b.rounds))
	buf = snapshot.AppendInt64(buf, b.skip)
	buf = snapshot.AppendBool(buf, b.hasSkip)
	return snapshot.AppendInt64Slice(buf, b.items)
}

// LoadBernoulliState restores state written by AppendBernoulliState.
func LoadBernoulliState(r *snapshot.Reader, b *Bernoulli[int64]) error {
	p := r.Float64()
	rounds := r.Int64()
	skip := r.Int64()
	hasSkip := r.Bool()
	items := r.Int64Slice()
	if err := r.Err(); err != nil {
		return err
	}
	if p < 0 || p > 1 || rounds < 0 || int64(len(items)) > rounds || (hasSkip && skip < 0) {
		return fmt.Errorf("sampler: inconsistent Bernoulli snapshot: %w", snapshot.ErrCorrupt)
	}
	b.P = p
	b.items = items
	b.rounds = int(rounds)
	b.skip = skip
	b.hasSkip = hasSkip
	b.invLogQ = 0 // lazily recomputed from P on the next batch
	b.delta.clear()
	return nil
}

// AppendReservoirState appends v's raw state.
func AppendReservoirState(buf []byte, v *Reservoir[int64]) []byte {
	buf = snapshot.AppendInt64(buf, int64(v.K))
	buf = snapshot.AppendInt64(buf, int64(v.rounds))
	buf = snapshot.AppendInt64(buf, int64(v.admitted))
	return snapshot.AppendInt64Slice(buf, v.items)
}

// LoadReservoirState restores state written by AppendReservoirState.
func LoadReservoirState(r *snapshot.Reader, v *Reservoir[int64]) error {
	k := r.Int64()
	rounds := r.Int64()
	admitted := r.Int64()
	items := r.Int64Slice()
	if err := r.Err(); err != nil {
		return err
	}
	if k < 1 || rounds < 0 || admitted < int64(len(items)) || int64(len(items)) > k {
		return fmt.Errorf("sampler: inconsistent reservoir snapshot: %w", snapshot.ErrCorrupt)
	}
	v.K = int(k)
	v.items = items
	v.rounds = int(rounds)
	v.admitted = int(admitted)
	v.delta.clear()
	return nil
}

// AppendReservoirLState appends v's raw state, including the Algorithm L
// skip machinery so restored samplers continue the exact skip sequence.
func AppendReservoirLState(buf []byte, v *ReservoirL[int64]) []byte {
	buf = snapshot.AppendInt64(buf, int64(v.K))
	buf = snapshot.AppendInt64(buf, int64(v.rounds))
	buf = snapshot.AppendInt64(buf, int64(v.admitted))
	buf = snapshot.AppendFloat64(buf, v.w)
	buf = snapshot.AppendInt64(buf, v.skip)
	return snapshot.AppendInt64Slice(buf, v.items)
}

// LoadReservoirLState restores state written by AppendReservoirLState.
func LoadReservoirLState(r *snapshot.Reader, v *ReservoirL[int64]) error {
	k := r.Int64()
	rounds := r.Int64()
	admitted := r.Int64()
	w := r.Float64()
	skip := r.Int64()
	items := r.Int64Slice()
	if err := r.Err(); err != nil {
		return err
	}
	if k < 1 || rounds < 0 || admitted < int64(len(items)) || int64(len(items)) > k {
		return fmt.Errorf("sampler: inconsistent reservoir-L snapshot: %w", snapshot.ErrCorrupt)
	}
	v.K = int(k)
	v.items = items
	v.rounds = int(rounds)
	v.admitted = int(admitted)
	v.w = w
	v.skip = skip
	v.delta.clear()
	return nil
}

// AppendWeightedState appends w's raw state. Keys and items are stored in
// heap order, which is part of the state: restoring preserves the exact
// displacement behaviour of the original heap layout.
func AppendWeightedState(buf []byte, w *WeightedReservoir[int64]) []byte {
	buf = snapshot.AppendInt64(buf, int64(w.K))
	buf = snapshot.AppendInt64(buf, int64(w.rounds))
	buf = snapshot.AppendFloat64Slice(buf, w.keys)
	return snapshot.AppendInt64Slice(buf, w.items)
}

// LoadWeightedState restores state written by AppendWeightedState.
func LoadWeightedState(r *snapshot.Reader, w *WeightedReservoir[int64]) error {
	k := r.Int64()
	rounds := r.Int64()
	keys := r.Float64Slice()
	items := r.Int64Slice()
	if err := r.Err(); err != nil {
		return err
	}
	if k < 1 || rounds < 0 || len(keys) != len(items) || int64(len(items)) > k {
		return fmt.Errorf("sampler: inconsistent weighted-reservoir snapshot: %w", snapshot.ErrCorrupt)
	}
	w.K = int(k)
	w.keys = keys
	w.items = items
	w.rounds = int(rounds)
	w.delta.clear()
	return nil
}

// AppendWithReplacementState appends s's raw state.
func AppendWithReplacementState(buf []byte, s *WithReplacement[int64]) []byte {
	buf = snapshot.AppendInt64(buf, int64(s.K))
	buf = snapshot.AppendInt64(buf, int64(s.rounds))
	buf = snapshot.AppendBool(buf, s.filled)
	return snapshot.AppendInt64Slice(buf, s.items)
}

// LoadWithReplacementState restores state written by
// AppendWithReplacementState.
func LoadWithReplacementState(r *snapshot.Reader, s *WithReplacement[int64]) error {
	k := r.Int64()
	rounds := r.Int64()
	filled := r.Bool()
	items := r.Int64Slice()
	if err := r.Err(); err != nil {
		return err
	}
	if k < 1 || rounds < 0 || (filled && int64(len(items)) != k) || (!filled && len(items) != 0) {
		return fmt.Errorf("sampler: inconsistent with-replacement snapshot: %w", snapshot.ErrCorrupt)
	}
	s.K = int(k)
	if !filled {
		items = make([]int64, k)
	}
	s.items = items
	s.filled = filled
	s.rounds = int(rounds)
	s.delta.clear()
	return nil
}

// SetMergedState overwrites a reservoir with the outcome of a coordinator
// merge ([CTW16] fan-in): items becomes the sample (copied), rounds the
// represented population size, and admitted the combined admission count.
// The public sketch surface uses it to implement MergeFrom on top of
// MergeSamples.
func (v *Reservoir[T]) SetMergedState(items []T, rounds, admitted int) {
	v.items = append(v.items[:0], items...)
	v.rounds = rounds
	v.admitted = admitted
	v.delta.clear()
}

// SetMergedState is the Bernoulli analogue: the union of two Bernoulli(p)
// samples over disjoint streams is a Bernoulli(p) sample of the
// concatenation, so merging is append + round addition.
func (b *Bernoulli[T]) SetMergedState(items []T, rounds int) {
	b.items = append(b.items[:0], items...)
	b.rounds = rounds
	b.delta.clear()
}
