package sampler

import (
	"slices"

	"robustsample/internal/rng"
)

// This file implements merging of reservoir samples, the primitive behind
// continuous sampling from distributed streams (Chung-Tirthapura-Woodruff
// [CTW16] and Cormode et al. [CMYZ12], discussed in the paper's Section
// 1.3): each site maintains a local uniform sample of its substream, and a
// coordinator combines them into a uniform sample of the union without
// seeing the raw streams.
//
// MergeSamples draws a without-replacement sample of size k from the union
// of two uniform samples by weighted interleaving: each draw takes the next
// element from side A with probability nA'/(nA'+nB'), where nA', nB' are
// the remaining (unsampled) population sizes represented by each side. This
// yields exactly the hypergeometric composition of a uniform k-subset of
// the union.

// MergeSamples combines sampleA (a uniform without-replacement sample of a
// population of size nA) and sampleB (likewise for nB) into a uniform
// without-replacement sample of size k of the combined population. It
// panics if either sample is larger than its population, or if
// k > len(sampleA) + len(sampleB) with k also exceeding what the populations
// could supply. The inputs are not mutated; elements are consumed in a
// randomized order so no positional bias leaks from the input samples.
func MergeSamples[T any](sampleA []T, nA int, sampleB []T, nB int, k int, r *rng.RNG) []T {
	if nA < len(sampleA) || nB < len(sampleB) {
		panic("sampler: population smaller than its sample")
	}
	if k < 0 {
		panic("sampler: negative merge size")
	}
	total := nA + nB
	if k > total {
		k = total
	}
	if k > len(sampleA)+len(sampleB) {
		panic("sampler: merge size exceeds available sampled elements")
	}

	// Shuffle copies so consumption order within each side is uniform.
	a := append([]T(nil), sampleA...)
	b := append([]T(nil), sampleB...)
	r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })

	out := make([]T, 0, k)
	remA, remB := nA, nB
	for len(out) < k {
		// Draw from A with probability remA / (remA + remB). If a side
		// has run out of sampled elements, its remaining population can
		// no longer be represented; fall back to the other side. (This
		// is the standard coordinator behaviour: local sample sizes are
		// provisioned so exhaustion is a low-probability event.)
		takeA := false
		switch {
		case len(a) == 0 && len(b) == 0:
			return out
		case len(a) == 0:
			takeA = false
		case len(b) == 0:
			takeA = true
		default:
			takeA = r.Float64()*float64(remA+remB) < float64(remA)
		}
		if takeA {
			out = append(out, a[len(a)-1])
			a = a[:len(a)-1]
			remA--
		} else {
			out = append(out, b[len(b)-1])
			b = b[:len(b)-1]
			remB--
		}
	}
	return out
}

// MergeReservoirs combines two reservoir samplers into a single sample of
// size k representing the union of their streams, using MergeSamples with
// the samplers' round counts as population sizes.
func MergeReservoirs[T any](a, b *Reservoir[T], k int, r *rng.RNG) []T {
	return MergeSamples(a.View(), a.Rounds(), b.View(), b.Rounds(), k, r)
}

// MergeFrom folds other's weighted sample into w. A-Res assigns every
// stream element an independent key u^(1/weight) and keeps the K largest;
// the keys of two disjoint substreams are jointly independent, so the K
// largest keys across both reservoirs are exactly the A-Res sample of the
// concatenated stream — the merge is lossless and needs no fresh
// randomness. Ties (measure zero) break toward the receiver's elements.
// other is not modified.
func (w *WeightedReservoir[T]) MergeFrom(other *WeightedReservoir[T]) {
	type pair struct {
		key  float64
		item T
	}
	pairs := make([]pair, 0, len(w.keys)+len(other.keys))
	for i, k := range w.keys {
		pairs = append(pairs, pair{k, w.items[i]})
	}
	for i, k := range other.keys {
		pairs = append(pairs, pair{k, other.items[i]})
	}
	// Descending by key, stable so receiver-side elements win ties.
	slices.SortStableFunc(pairs, func(a, b pair) int {
		switch {
		case a.key > b.key:
			return -1
		case a.key < b.key:
			return 1
		}
		return 0
	})
	if len(pairs) > w.K {
		pairs = pairs[:w.K]
	}
	rounds := w.rounds + other.rounds
	w.keys = w.keys[:0]
	w.items = w.items[:0]
	for _, p := range pairs {
		w.push(p.key, p.item)
	}
	w.rounds = rounds
	w.delta.clear()
}
