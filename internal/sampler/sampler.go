// Package sampler implements the streaming sampling algorithms analyzed by
// the paper — BernoulliSample and ReservoirSample (Vitter's Algorithm R,
// exactly as the pseudocode in Section 2) — plus the weighted-reservoir
// extension discussed in Section 1.3 (Efraimidis-Spirakis A-Res) and a
// with-replacement variant used in ablation benchmarks.
//
// Samplers are generic over the element type. The adversarial game fixes
// T = int64 (ordered universes), but the public library is usable with any
// payload. All randomness is drawn from an explicit *rng.RNG so that games
// and experiments are reproducible.
//
// The Offer method returns whether the element was admitted into the sample
// in this round; this is precisely the bit the paper's adaptive adversary
// conditions on (it observes the post-update state σ_i, from which admission
// is visible).
package sampler

import (
	"math"
	"math/bits"
	"slices"

	"robustsample/internal/rng"
)

// bulkDraws caps the samplers' bulk-RNG scratch buffers: batch ingest
// pre-draws up to this many uniforms per refill (see Reservoir.OfferBatch
// for the exact-drain argument that makes prefilling safe).
const bulkDraws = 512

// Bernoulli keeps each offered element independently with probability P.
// For a stream of length n the sample size concentrates around n*P
// (Chernoff; Theorem 3.1 of the paper).
type Bernoulli[T any] struct {
	// P is the per-element sampling probability in [0, 1].
	P float64

	items  []T
	rounds int
	delta  sampleDelta[T]

	// Batch-ingest gap-skipping state: the number of upcoming batch
	// elements to reject before the next admission, valid when hasSkip.
	// Carrying it across OfferBatch calls makes batch results invariant
	// to how the stream is chunked. invLogQ caches 1/ln(1-P).
	skip    int64
	hasSkip bool
	invLogQ float64
}

// NewBernoulli returns a Bernoulli sampler with rate p. It panics unless
// 0 <= p <= 1.
func NewBernoulli[T any](p float64) *Bernoulli[T] {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("sampler: Bernoulli rate must be in [0, 1]")
	}
	return &Bernoulli[T]{P: p}
}

// Offer processes the next stream element, returning whether it was sampled.
func (b *Bernoulli[T]) Offer(x T, r *rng.RNG) bool {
	b.rounds++
	b.delta.clear()
	if r.Bernoulli(b.P) {
		b.items = append(b.items, x)
		b.delta.add(x)
		return true
	}
	return false
}

// OfferBatch processes a run of consecutive stream elements in one call,
// returning how many were admitted. Instead of one coin flip per element it
// draws the gaps between admissions directly from the geometric distribution
// (one logarithm per admitted element, against a precomputed 1/ln(1-P)), so
// a benign stream at rate p costs O(p*n) RNG work instead of O(n). The
// admission law is exactly i.i.d. Bernoulli(P) per element, and results do
// not depend on how the stream is sliced into batches — only on the order
// of elements offered — because the pending gap carries across calls.
//
// The batch path consumes randomness differently from per-element Offer, so
// for a fixed RNG the two select different (equally distributed) samples.
// LastDelta afterwards reports the batch's admissions.
//
//robust:hotpath
func (b *Bernoulli[T]) OfferBatch(xs []T, r *rng.RNG) int {
	b.delta.clear()
	if len(xs) == 0 {
		return 0
	}
	n := len(xs)
	b.rounds += n
	switch {
	case b.P <= 0:
		return 0
	case b.P >= 1:
		b.items = append(b.items, xs...)
		for _, x := range xs {
			b.delta.add(x)
		}
		return n
	}
	if b.invLogQ == 0 {
		b.invLogQ = 1 / math.Log1p(-b.P)
	}
	// Stride directly from admission to admission with the skip state in
	// locals: rejected stretches cost one subtraction, not one branch per
	// element. Bulk-prefilling the geometric draws (FillGeometricInv) is
	// deliberately NOT done here: a skip can cover the whole remainder of
	// the batch while consuming zero further draws, so prefilled skips have
	// no consumption lower bound and would leave the generator ahead of the
	// per-call sequence, breaking chunking invariance. One logarithm per
	// admission is already the information-theoretic floor for this path.
	admitted, i := 0, 0
	skip, hasSkip, invLogQ := b.skip, b.hasSkip, b.invLogQ
	for {
		if !hasSkip {
			skip = r.GeometricInv(invLogQ)
			hasSkip = true
		}
		if skip >= int64(n-i) {
			skip -= int64(n - i)
			break
		}
		i += int(skip)
		x := xs[i]
		b.items = append(b.items, x)
		b.delta.add(x)
		admitted++
		i++
		hasSkip = false
	}
	b.skip, b.hasSkip = skip, hasSkip
	return admitted
}

// LastDelta reports how the sample multiset changed in the most recent
// Offer or OfferBatch; Bernoulli sampling never evicts, so removed is
// always empty.
func (b *Bernoulli[T]) LastDelta() (added, removed []T) { return b.delta.view() }

// View returns the current sample without copying. Callers must not mutate
// the returned slice; it is the sampler's internal state σ_i.
func (b *Bernoulli[T]) View() []T { return b.items }

// Sample returns a copy of the current sample.
func (b *Bernoulli[T]) Sample() []T { return append([]T(nil), b.items...) }

// Len returns the current sample size.
func (b *Bernoulli[T]) Len() int { return len(b.items) }

// Rounds returns the number of elements offered so far.
func (b *Bernoulli[T]) Rounds() int { return b.rounds }

// Reset clears the sampler for a fresh stream.
func (b *Bernoulli[T]) Reset() {
	b.items = b.items[:0]
	b.rounds = 0
	b.delta.clear()
	b.skip = 0
	b.hasSkip = false
}

// sampleDelta records the multiset change of one Offer without allocating:
// the buffers are reused round to round. It backs the samplers' LastDelta
// methods, which the continuous game consumes to keep its incremental
// discrepancy accumulator in sync with the sample (including evictions).
type sampleDelta[T any] struct {
	added   []T
	removed []T
}

func (d *sampleDelta[T]) clear() {
	d.added = d.added[:0]
	d.removed = d.removed[:0]
}

func (d *sampleDelta[T]) add(x T)    { d.added = append(d.added, x) }
func (d *sampleDelta[T]) remove(x T) { d.removed = append(d.removed, x) }

func (d *sampleDelta[T]) view() (added, removed []T) { return d.added, d.removed }

// Reservoir maintains a uniform without-replacement sample of fixed size K
// using Vitter's Algorithm R, exactly as the ReservoirSample pseudocode in
// Section 2 of the paper: the first K elements are stored with probability
// one; element i > K is stored with probability K/i, overwriting a uniformly
// random slot.
type Reservoir[T any] struct {
	// K is the reservoir capacity.
	K int

	items    []T
	rounds   int
	admitted int // k' in Section 5: total elements ever admitted
	delta    sampleDelta[T]

	// ubuf is OfferBatch's bulk-uniform scratch. It is pure scratch: it is
	// always logically empty between calls (see the exact-drain argument in
	// OfferBatch), so snapshots and merges ignore it.
	ubuf []uint64
}

// NewReservoir returns a reservoir sampler of capacity k. It panics unless
// k >= 1.
func NewReservoir[T any](k int) *Reservoir[T] {
	if k < 1 {
		panic("sampler: reservoir capacity must be >= 1")
	}
	return &Reservoir[T]{K: k, items: make([]T, 0, k)}
}

// Offer processes the next stream element, returning whether it entered the
// reservoir (possibly evicting an older element).
func (v *Reservoir[T]) Offer(x T, r *rng.RNG) bool {
	v.delta.clear()
	return v.offerOne(x, r)
}

// offerOne is the per-element admission step shared by Offer and
// OfferBatch, so the two paths cannot drift apart (the batch path's
// bit-identical-randomness guarantee depends on them staying the same).
func (v *Reservoir[T]) offerOne(x T, r *rng.RNG) bool {
	v.rounds++
	if len(v.items) < v.K {
		v.items = append(v.items, x)
		v.admitted++
		v.delta.add(x)
		return true
	}
	// Store with probability K/i by drawing j uniform in [0, i) and
	// admitting when j < K; j then doubles as the eviction slot, which
	// is uniform in [0, K) conditioned on admission.
	j := r.Intn(v.rounds)
	if j < v.K {
		v.delta.remove(v.items[j])
		v.items[j] = x
		v.admitted++
		v.delta.add(x)
		return true
	}
	return false
}

// OfferBatch processes a run of consecutive stream elements in one call,
// returning how many entered the reservoir. It draws exactly the same
// randomness as offering the elements one at a time, so the resulting
// sample is bit-identical to the per-element path and independent of how
// the stream is sliced into batches; the win is pre-drawing uniforms in
// bulk (FillUniform64 into a sampler-local scratch) and inlining the
// Lemire admission test, instead of paying a generator call, a state
// reload, and a division guard per element. LastDelta afterwards reports
// the batch's net admissions and evictions (adds first, then removals).
//
// Why prefilling is safe (the exact-drain invariant): in the steady state
// every element consumes at least one uniform — one Lemire multiply, plus
// rare rejection redraws that also come from the scratch in draw order.
// Each refill takes min(remaining, bulkDraws) values, which is a lower
// bound on the draws the rest of the batch must consume, so the scratch
// provably empties by the end of the batch and the generator finishes in
// exactly the per-element state. Snapshots, merges, and chunking
// invariance are therefore untouched by the bulk path.
//
//robust:hotpath
func (v *Reservoir[T]) OfferBatch(xs []T, r *rng.RNG) int {
	v.delta.clear()
	n := len(xs)
	admitted, i := 0, 0
	// Fill phase: the first K elements are stored without randomness.
	for i < n && len(v.items) < v.K {
		v.items = append(v.items, xs[i])
		v.delta.add(xs[i])
		v.rounds++
		v.admitted++
		admitted++
		i++
	}
	if i == n {
		return admitted
	}
	if cap(v.ubuf) < bulkDraws {
		v.ubuf = make([]uint64, bulkDraws)
	}
	buf := v.ubuf[:bulkDraws]
	items, K := v.items, v.K
	rounds := v.rounds
	bi, bn := 0, 0
	for ; i < n; i++ {
		if bi == bn {
			bn = min(n-i, bulkDraws)
			r.FillUniform64(buf[:bn])
			bi = 0
		}
		rounds++
		// Admit with probability K/rounds: draw j uniform in [0, rounds)
		// via Lemire's multiply and keep when j < K; j doubles as the
		// eviction slot. This is offerOne's r.Intn inlined against the
		// scratch, accept condition and redraw order included.
		m := uint64(rounds)
		hi, lo := bits.Mul64(buf[bi], m)
		bi++
		if lo < m {
			// Possible Lemire rejection; only now pay the division.
			thresh := (-m) % m
			for lo < thresh {
				if bi == bn {
					// The current element is still consuming draws, so
					// it counts toward the refill bound along with the
					// n-i-1 elements after it.
					bn = min(n-i, bulkDraws)
					r.FillUniform64(buf[:bn])
					bi = 0
				}
				hi, lo = bits.Mul64(buf[bi], m)
				bi++
			}
		}
		if j := int(hi); j < K {
			v.delta.remove(items[j])
			items[j] = xs[i]
			v.delta.add(xs[i])
			v.admitted++
			admitted++
		}
	}
	v.rounds = rounds
	return admitted
}

// LastDelta reports the element admitted by the most recent Offer and the
// element it evicted, if any (or the cumulative delta of the most recent
// OfferBatch).
func (v *Reservoir[T]) LastDelta() (added, removed []T) { return v.delta.view() }

// View returns the current sample without copying; callers must not mutate.
func (v *Reservoir[T]) View() []T { return v.items }

// Sample returns a copy of the current sample.
func (v *Reservoir[T]) Sample() []T { return append([]T(nil), v.items...) }

// Len returns the current sample size (min(K, rounds)).
func (v *Reservoir[T]) Len() int { return len(v.items) }

// Rounds returns the number of elements offered so far.
func (v *Reservoir[T]) Rounds() int { return v.rounds }

// TotalAdmitted returns k', the number of elements ever admitted to the
// reservoir including those later evicted. Section 5 of the paper bounds
// E[k'] <= 2k ln n; the attack experiments verify this.
func (v *Reservoir[T]) TotalAdmitted() int { return v.admitted }

// Reset clears the sampler for a fresh stream.
func (v *Reservoir[T]) Reset() {
	v.items = v.items[:0]
	v.rounds = 0
	v.admitted = 0
	v.delta.clear()
}

// WeightedItem pairs an element with a positive weight for weighted
// reservoir sampling.
type WeightedItem[T any] struct {
	Value  T
	Weight float64
}

// WeightedReservoir implements Efraimidis-Spirakis A-Res weighted reservoir
// sampling without replacement ([ES06], discussed in Section 1.3): each
// element receives key u^(1/w) with u uniform in (0,1), and the K largest
// keys are kept. The inclusion probability of an element grows with its
// weight.
type WeightedReservoir[T any] struct {
	// K is the reservoir capacity.
	K int

	// heap of (key, item) with the smallest key at the root, so the
	// element most likely to be displaced is inspected in O(1).
	keys   []float64
	items  []T
	rounds int
	delta  sampleDelta[T]
}

// NewWeightedReservoir returns a weighted reservoir of capacity k. It panics
// unless k >= 1.
func NewWeightedReservoir[T any](k int) *WeightedReservoir[T] {
	if k < 1 {
		panic("sampler: weighted reservoir capacity must be >= 1")
	}
	return &WeightedReservoir[T]{K: k}
}

// Offer processes an element with the given positive weight, returning
// whether it was admitted. Elements with non-positive weight are never
// admitted.
func (w *WeightedReservoir[T]) Offer(x T, weight float64, r *rng.RNG) bool {
	w.rounds++
	w.delta.clear()
	if weight <= 0 || math.IsNaN(weight) {
		return false
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	key := math.Pow(u, 1/weight)
	if len(w.items) < w.K {
		w.push(key, x)
		w.delta.add(x)
		return true
	}
	if key <= w.keys[0] {
		return false
	}
	w.delta.remove(w.items[0])
	w.keys[0] = key
	w.items[0] = x
	w.delta.add(x)
	w.siftDown(0)
	return true
}

// LastDelta reports the element admitted by the most recent Offer and the
// element it displaced from the heap root, if any. It lets continuous games
// keep an incremental discrepancy accumulator in sync with the weighted
// sample in O(1) per round instead of rebuilding from View per checkpoint.
func (w *WeightedReservoir[T]) LastDelta() (added, removed []T) { return w.delta.view() }

func (w *WeightedReservoir[T]) push(key float64, x T) {
	w.keys = append(w.keys, key)
	w.items = append(w.items, x)
	i := len(w.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if w.keys[parent] <= w.keys[i] {
			break
		}
		w.swap(i, parent)
		i = parent
	}
}

func (w *WeightedReservoir[T]) siftDown(i int) {
	n := len(w.keys)
	for {
		l, rch := 2*i+1, 2*i+2
		smallest := i
		if l < n && w.keys[l] < w.keys[smallest] {
			smallest = l
		}
		if rch < n && w.keys[rch] < w.keys[smallest] {
			smallest = rch
		}
		if smallest == i {
			return
		}
		w.swap(i, smallest)
		i = smallest
	}
}

func (w *WeightedReservoir[T]) swap(i, j int) {
	w.keys[i], w.keys[j] = w.keys[j], w.keys[i]
	w.items[i], w.items[j] = w.items[j], w.items[i]
}

// View returns the current sample without copying; callers must not mutate.
// The order is heap order, not insertion order.
func (w *WeightedReservoir[T]) View() []T { return w.items }

// Sample returns a copy of the current sample.
func (w *WeightedReservoir[T]) Sample() []T { return append([]T(nil), w.items...) }

// Len returns the current sample size.
func (w *WeightedReservoir[T]) Len() int { return len(w.items) }

// Rounds returns the number of elements offered so far.
func (w *WeightedReservoir[T]) Rounds() int { return w.rounds }

// Reset clears the sampler for a fresh stream.
func (w *WeightedReservoir[T]) Reset() {
	w.keys = w.keys[:0]
	w.items = w.items[:0]
	w.rounds = 0
	w.delta.clear()
}

// WithReplacement maintains K independent uniform samples of size one (K
// independent single-slot reservoirs). It is used in ablations: unlike
// Algorithm R its slots are independent, which slightly changes the
// martingale variance profile of Section 4.2.
type WithReplacement[T any] struct {
	// K is the number of independent slots.
	K int

	items  []T
	filled bool
	rounds int
	delta  sampleDelta[T]

	// fbuf is OfferBatch's bulk-uniform scratch (always logically empty
	// between calls; see the exact-drain note in OfferBatch).
	fbuf []float64
}

// NewWithReplacement returns a with-replacement sampler with k slots. It
// panics unless k >= 1.
func NewWithReplacement[T any](k int) *WithReplacement[T] {
	if k < 1 {
		panic("sampler: with-replacement capacity must be >= 1")
	}
	return &WithReplacement[T]{K: k, items: make([]T, k)}
}

// Offer processes the next element; it returns true if any slot adopted it.
func (s *WithReplacement[T]) Offer(x T, r *rng.RNG) bool {
	s.delta.clear()
	return s.offerOne(x, r)
}

// offerOne is the per-element adoption step shared by Offer and OfferBatch,
// so the two paths cannot drift apart (the batch path's bit-identical-
// randomness guarantee depends on them staying the same).
func (s *WithReplacement[T]) offerOne(x T, r *rng.RNG) bool {
	s.rounds++
	if s.rounds == 1 {
		for i := range s.items {
			s.items[i] = x
			s.delta.add(x)
		}
		s.filled = true
		return true
	}
	// Each slot independently replaces its content with probability 1/i.
	// The number of adopting slots is Binomial(K, 1/i); sample it via
	// geometric skips to stay O(adoptions) per round in expectation.
	p := 1 / float64(s.rounds)
	i := 0
	admitted := false
	for i < s.K {
		skip := r.Geometric(p)
		if skip > int64(s.K-i-1) {
			break
		}
		i += int(skip)
		s.delta.remove(s.items[i])
		s.items[i] = x
		s.delta.add(x)
		admitted = true
		i++
	}
	return admitted
}

// OfferBatch processes a run of consecutive elements with exactly the same
// randomness as per-element Offers (bit-identical samples, chunking
// invariant). It returns the number of rounds in which any slot adopted the
// offered element. The batch path pre-draws uniforms with FillFloat64 into
// a sampler-local scratch and inlines the geometric skip arithmetic: every
// round consumes at least one nonzero uniform (the first skip draw), so a
// refill of min(remaining, bulkDraws) values is always fully consumed by
// the end of the batch and the generator lands in exactly the per-element
// state — the same exact-drain argument as Reservoir.OfferBatch.
//
//robust:hotpath
func (s *WithReplacement[T]) OfferBatch(xs []T, r *rng.RNG) int {
	s.delta.clear()
	n := len(xs)
	admitted, i := 0, 0
	if n > 0 && s.rounds == 0 {
		// First element ever: every slot adopts it, no randomness drawn.
		if s.offerOne(xs[0], r) {
			admitted++
		}
		i = 1
	}
	if i == n {
		return admitted
	}
	if cap(s.fbuf) < bulkDraws {
		s.fbuf = make([]float64, bulkDraws)
	}
	buf := s.fbuf[:bulkDraws]
	K := s.K
	bi, bn := 0, 0
	for ; i < n; i++ {
		s.rounds++
		// Each slot independently adopts with probability p = 1/rounds;
		// the adopting slots are located by geometric skips exactly as in
		// offerOne (Geometric's zero-rejection and saturation included),
		// only the uniforms come from the scratch.
		p := 1 / float64(s.rounds)
		logQ := math.Log(1 - p)
		k := 0
		adopted := false
		for k < K {
			var u float64
			for {
				if bi == bn {
					// The current round is still consuming draws, so it
					// counts toward the refill bound with the n-i-1
					// rounds after it.
					bn = min(n-i, bulkDraws)
					r.FillFloat64(buf[:bn])
					bi = 0
				}
				u = buf[bi]
				bi++
				if u != 0 {
					break
				}
			}
			skip := satGeom(math.Floor(math.Log(u) / logQ))
			if skip > int64(K-k-1) {
				break
			}
			k += int(skip)
			s.delta.remove(s.items[k])
			s.items[k] = xs[i]
			s.delta.add(xs[i])
			adopted = true
			k++
		}
		if adopted {
			admitted++
		}
	}
	return admitted
}

// satGeom mirrors the rng package's geometric saturation so the inlined
// skip arithmetic above stays bit-identical to rng.Geometric.
func satGeom(f float64) int64 {
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(f)
}

// LastDelta reports the slot adoptions of the most recent Offer: one added
// copy of the offered element per adopting slot, and the displaced values
// (or the cumulative delta of the most recent OfferBatch).
func (s *WithReplacement[T]) LastDelta() (added, removed []T) { return s.delta.view() }

// View returns the slots without copying; callers must not mutate. Before
// the first element arrives the slots hold zero values.
func (s *WithReplacement[T]) View() []T {
	if !s.filled {
		return nil
	}
	return s.items
}

// Sample returns a copy of the slots.
func (s *WithReplacement[T]) Sample() []T {
	return append([]T(nil), s.View()...)
}

// Len returns the number of live slots.
func (s *WithReplacement[T]) Len() int {
	if !s.filled {
		return 0
	}
	return s.K
}

// Rounds returns the number of elements offered so far.
func (s *WithReplacement[T]) Rounds() int { return s.rounds }

// Reset clears the sampler for a fresh stream.
func (s *WithReplacement[T]) Reset() {
	s.filled = false
	s.rounds = 0
	s.delta.clear()
	for i := range s.items {
		var zero T
		s.items[i] = zero
	}
}

// SortedCopy returns an ascending copy of an int64 sample; a convenience for
// tests and verdicts.
func SortedCopy(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	slices.Sort(out)
	return out
}
