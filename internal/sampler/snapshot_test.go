package sampler

import (
	"bytes"
	"slices"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/snapshot"
)

// cloneRNG returns a generator in exactly r's state.
func cloneRNG(r *rng.RNG) *rng.RNG {
	c := rng.New(0)
	c.SetState(r.State())
	return c
}

// feedInt64 offers n pseudo-random elements drawn from src to offer.
func feedInt64(n int, src *rng.RNG, offer func(x int64)) {
	for i := 0; i < n; i++ {
		offer(1 + src.Int63n(1000))
	}
}

// roundTrip checks the three snapshot laws for one sampler pair:
// snap(orig) == snap(restore(snap(orig))), and after identical further
// input from identically seeded RNGs the two samplers hold equal samples.
func roundTrip[S any](t *testing.T, name string, orig, fresh S,
	snap func(S) []byte, load func(*snapshot.Reader, S) error,
	offer func(S, int64, *rng.RNG), view func(S) []int64, rounds func(S) int) {
	t.Helper()

	seedRNG := rng.New(11)
	feedRNG := rng.New(7)
	feedInt64(500, seedRNG, func(x int64) { offer(orig, x, feedRNG) })

	s1 := snap(orig)
	if err := load(snapshot.NewReader(s1), fresh); err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	s2 := snap(fresh)
	if !bytes.Equal(s1, s2) {
		t.Fatalf("%s: snapshot not bit-identical after restore", name)
	}
	if !slices.Equal(view(orig), view(fresh)) {
		t.Fatalf("%s: restored sample differs", name)
	}
	if rounds(orig) != rounds(fresh) {
		t.Fatalf("%s: restored rounds %d != %d", name, rounds(fresh), rounds(orig))
	}

	// Continuation: identical RNG states + identical input => identical
	// behaviour from the restore point on.
	contA := cloneRNG(feedRNG)
	contB := cloneRNG(feedRNG)
	moreA := rng.New(99)
	moreB := rng.New(99)
	feedInt64(500, moreA, func(x int64) { offer(orig, x, contA) })
	feedInt64(500, moreB, func(x int64) { offer(fresh, x, contB) })
	if !slices.Equal(view(orig), view(fresh)) {
		t.Fatalf("%s: continuation diverged after restore", name)
	}
}

func TestBernoulliSnapshotRoundTrip(t *testing.T) {
	roundTrip(t, "bernoulli",
		NewBernoulli[int64](0.2), NewBernoulli[int64](0.9),
		func(s *Bernoulli[int64]) []byte { return AppendBernoulliState(nil, s) },
		LoadBernoulliState,
		func(s *Bernoulli[int64], x int64, r *rng.RNG) { s.Offer(x, r) },
		func(s *Bernoulli[int64]) []int64 { return s.View() },
		func(s *Bernoulli[int64]) int { return s.Rounds() })
}

// TestBernoulliSnapshotBatchGapState proves the pending gap-skip counter
// survives a snapshot: a batch split across a snapshot boundary admits the
// same elements as an uninterrupted run.
func TestBernoulliSnapshotBatchGapState(t *testing.T) {
	mk := func() (*Bernoulli[int64], *rng.RNG) {
		return NewBernoulli[int64](0.05), rng.New(3)
	}
	stream := make([]int64, 4000)
	src := rng.New(5)
	for i := range stream {
		stream[i] = 1 + src.Int63n(1<<20)
	}

	a, ra := mk()
	a.OfferBatch(stream[:1500], ra)
	snap := AppendBernoulliState(nil, a)

	b, _ := mk()
	if err := LoadBernoulliState(snapshot.NewReader(snap), b); err != nil {
		t.Fatal(err)
	}
	rb := cloneRNG(ra)

	a.OfferBatch(stream[1500:], ra)
	b.OfferBatch(stream[1500:], rb)
	if !slices.Equal(a.View(), b.View()) {
		t.Fatal("gap-skip state lost across snapshot: batch continuation diverged")
	}
}

func TestReservoirSnapshotRoundTrip(t *testing.T) {
	roundTrip(t, "reservoir",
		NewReservoir[int64](32), NewReservoir[int64](5),
		func(s *Reservoir[int64]) []byte { return AppendReservoirState(nil, s) },
		LoadReservoirState,
		func(s *Reservoir[int64], x int64, r *rng.RNG) { s.Offer(x, r) },
		func(s *Reservoir[int64]) []int64 { return s.View() },
		func(s *Reservoir[int64]) int { return s.Rounds() })
}

func TestReservoirLSnapshotRoundTrip(t *testing.T) {
	roundTrip(t, "reservoirL",
		NewReservoirL[int64](32), NewReservoirL[int64](5),
		func(s *ReservoirL[int64]) []byte { return AppendReservoirLState(nil, s) },
		LoadReservoirLState,
		func(s *ReservoirL[int64], x int64, r *rng.RNG) { s.Offer(x, r) },
		func(s *ReservoirL[int64]) []int64 { return s.View() },
		func(s *ReservoirL[int64]) int { return s.Rounds() })
}

func TestWithReplacementSnapshotRoundTrip(t *testing.T) {
	roundTrip(t, "with-replacement",
		NewWithReplacement[int64](16), NewWithReplacement[int64](3),
		func(s *WithReplacement[int64]) []byte { return AppendWithReplacementState(nil, s) },
		LoadWithReplacementState,
		func(s *WithReplacement[int64], x int64, r *rng.RNG) { s.Offer(x, r) },
		func(s *WithReplacement[int64]) []int64 { return s.View() },
		func(s *WithReplacement[int64]) int { return s.Rounds() })
}

func TestWeightedSnapshotRoundTrip(t *testing.T) {
	w := NewWeightedReservoir[int64](16)
	fresh := NewWeightedReservoir[int64](2)
	feedRNG := rng.New(7)
	src := rng.New(11)
	for i := 0; i < 400; i++ {
		w.Offer(1+src.Int63n(1000), 0.5+src.Float64(), feedRNG)
	}
	s1 := AppendWeightedState(nil, w)
	if err := LoadWeightedState(snapshot.NewReader(s1), fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, AppendWeightedState(nil, fresh)) {
		t.Fatal("weighted snapshot not bit-identical after restore")
	}
	contA, contB := cloneRNG(feedRNG), cloneRNG(feedRNG)
	moreA, moreB := rng.New(99), rng.New(99)
	for i := 0; i < 400; i++ {
		xa, wa := 1+moreA.Int63n(1000), 0.5+moreA.Float64()
		xb, wb := 1+moreB.Int63n(1000), 0.5+moreB.Float64()
		w.Offer(xa, wa, contA)
		fresh.Offer(xb, wb, contB)
	}
	if !slices.Equal(w.View(), fresh.View()) {
		t.Fatal("weighted continuation diverged after restore")
	}
}

func TestLoadStateKindMismatch(t *testing.T) {
	res := NewReservoir[int64](4)
	r := rng.New(1)
	for i := int64(1); i <= 10; i++ {
		res.Offer(i, r)
	}
	buf, err := AppendState(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadState(snapshot.NewReader(buf), NewBernoulli[int64](0.5)); err == nil {
		t.Fatal("loading a reservoir snapshot into a Bernoulli sampler should fail")
	}
	// Correct type round-trips through the kind-tagged path too.
	back := NewReservoir[int64](9)
	if err := LoadState(snapshot.NewReader(buf), back); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.View(), back.View()) {
		t.Fatal("kind-tagged round trip lost the sample")
	}
}

func TestLoadTruncatedSnapshot(t *testing.T) {
	res := NewReservoir[int64](8)
	r := rng.New(2)
	for i := int64(1); i <= 50; i++ {
		res.Offer(i, r)
	}
	full := AppendReservoirState(nil, res)
	for _, cut := range []int{0, 1, 8, len(full) - 1} {
		if err := LoadReservoirState(snapshot.NewReader(full[:cut]), NewReservoir[int64](8)); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

// TestWeightedMergeFrom verifies the A-Res merge law: the merged reservoir
// holds exactly the top-K keys of the union of both key sets.
func TestWeightedMergeFrom(t *testing.T) {
	r := rng.New(42)
	a := NewWeightedReservoir[int64](8)
	b := NewWeightedReservoir[int64](8)
	src := rng.New(17)
	for i := 0; i < 100; i++ {
		a.Offer(1+src.Int63n(500), 0.5+src.Float64(), r)
		b.Offer(500+src.Int63n(500), 0.5+src.Float64(), r)
	}
	// Union of (key, item) pairs before the merge.
	type pair struct {
		k float64
		v int64
	}
	var union []pair
	ka, ia := append([]float64(nil), a.keys...), append([]int64(nil), a.items...)
	for i := range ka {
		union = append(union, pair{ka[i], ia[i]})
	}
	for i := range b.keys {
		union = append(union, pair{b.keys[i], b.items[i]})
	}
	slices.SortFunc(union, func(p, q pair) int {
		switch {
		case p.k > q.k:
			return -1
		case p.k < q.k:
			return 1
		}
		return 0
	})
	wantRounds := a.Rounds() + b.Rounds()

	a.MergeFrom(b)
	if a.Rounds() != wantRounds {
		t.Fatalf("merged rounds %d, want %d", a.Rounds(), wantRounds)
	}
	if a.Len() != 8 {
		t.Fatalf("merged size %d, want 8", a.Len())
	}
	got := append([]float64(nil), a.keys...)
	slices.Sort(got)
	want := make([]float64, 0, 8)
	for _, p := range union[:8] {
		want = append(want, p.k)
	}
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("merged keys are not the top-K of the union:\ngot  %v\nwant %v", got, want)
	}
}
