package sampler

import (
	"math"
	"reflect"
	"testing"

	"robustsample/internal/rng"
)

// batchSampler is the bulk-ingest surface shared by the int64 samplers.
type batchSampler interface {
	Offer(x int64, r *rng.RNG) bool
	OfferBatch(xs []int64, r *rng.RNG) int
	View() []int64
	Rounds() int
	LastDelta() (added, removed []int64)
	Reset()
}

func batchCases() []struct {
	name      string
	mk        func() batchSampler
	exactBits bool // batch path draws identical randomness to per-element
} {
	return []struct {
		name      string
		mk        func() batchSampler
		exactBits bool
	}{
		{"bernoulli", func() batchSampler { return NewBernoulli[int64](0.05) }, false},
		{"reservoir", func() batchSampler { return NewReservoir[int64](16) }, true},
		{"reservoirL", func() batchSampler { return NewReservoirL[int64](16) }, true},
		{"with-replacement", func() batchSampler { return NewWithReplacement[int64](16) }, true},
	}
}

func testStream(n int) []int64 {
	r := rng.New(5)
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(1000)
	}
	return out
}

// TestOfferBatchMatchesSequential: for samplers whose batch path draws the
// same randomness as per-element Offers, the final sample, round count and
// admission totals must be bit-identical between the two ingest styles.
func TestOfferBatchMatchesSequential(t *testing.T) {
	stream := testStream(3000)
	for _, tc := range batchCases() {
		if !tc.exactBits {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.mk()
			rs := rng.New(21)
			for _, x := range stream {
				seq.Offer(x, rs)
			}
			bat := tc.mk()
			rb := rng.New(21)
			bat.OfferBatch(stream, rb)
			if !reflect.DeepEqual(seq.View(), bat.View()) {
				t.Fatalf("batch sample differs from sequential:\n%v\nvs\n%v", bat.View(), seq.View())
			}
			if seq.Rounds() != bat.Rounds() {
				t.Fatalf("rounds %d != %d", bat.Rounds(), seq.Rounds())
			}
			if rs.Uint64() != rb.Uint64() {
				t.Fatal("batch path consumed different randomness than sequential")
			}
		})
	}
}

// TestOfferBatchChunkInvariance: slicing the same stream into batches of any
// sizes must produce the same final sample (all samplers, including the
// Bernoulli gap-skipping path, whose pending skip carries across calls).
func TestOfferBatchChunkInvariance(t *testing.T) {
	stream := testStream(4000)
	chunkings := [][]int{{1}, {7}, {64}, {1024}, {4000}, {1, 999, 3, 501, 2496}}
	for _, tc := range batchCases() {
		t.Run(tc.name, func(t *testing.T) {
			var want []int64
			wantRounds := 0
			for ci, chunks := range chunkings {
				s := tc.mk()
				r := rng.New(33)
				i := 0
				k := 0
				for i < len(stream) {
					size := chunks[k%len(chunks)]
					k++
					j := min(i+size, len(stream))
					s.OfferBatch(stream[i:j], r)
					i = j
				}
				if ci == 0 {
					want = append([]int64(nil), s.View()...)
					wantRounds = s.Rounds()
					continue
				}
				if !reflect.DeepEqual(append([]int64(nil), s.View()...), want) {
					t.Fatalf("chunking %v changed the sample:\n%v\nvs\n%v", chunks, s.View(), want)
				}
				if s.Rounds() != wantRounds {
					t.Fatalf("chunking %v changed rounds: %d vs %d", chunks, s.Rounds(), wantRounds)
				}
			}
		})
	}
}

// TestOfferBatchDeltaTracksView replays each batch's cumulative delta into a
// shadow multiset (removals applied after additions, as the continuous game
// does) and checks it equals the sample view after every batch.
func TestOfferBatchDeltaTracksView(t *testing.T) {
	stream := testStream(2500)
	for _, tc := range batchCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			r := rng.New(44)
			shadow := map[int64]int{}
			sizes := []int{3, 1, 47, 256, 9, 800}
			i, k := 0, 0
			for i < len(stream) {
				j := min(i+sizes[k%len(sizes)], len(stream))
				k++
				s.OfferBatch(stream[i:j], r)
				i = j
				added, removed := s.LastDelta()
				for _, v := range added {
					shadow[v]++
				}
				for _, v := range removed {
					shadow[v]--
					if shadow[v] < 0 {
						t.Fatalf("batch ending at %d: removed %d more times than added", i, v)
					}
					if shadow[v] == 0 {
						delete(shadow, v)
					}
				}
				view := map[int64]int{}
				for _, v := range s.View() {
					view[v]++
				}
				if !reflect.DeepEqual(view, shadow) {
					t.Fatalf("batch ending at %d: shadow %v != view %v", i, shadow, view)
				}
			}
		})
	}
}

// TestOfferBatchEmptyClearsDelta: an empty batch is still "the most recent
// OfferBatch" — LastDelta must come back empty, not replay the previous
// batch's delta into a delta-syncing caller.
func TestOfferBatchEmptyClearsDelta(t *testing.T) {
	stream := testStream(300)
	for _, tc := range batchCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			r := rng.New(3)
			s.OfferBatch(stream, r)
			if added, _ := s.LastDelta(); len(added) == 0 {
				t.Skip("no admissions to observe")
			}
			s.OfferBatch(nil, r)
			if added, removed := s.LastDelta(); len(added) != 0 || len(removed) != 0 {
				t.Fatalf("empty batch left stale delta +%v -%v", added, removed)
			}
		})
	}
}

// TestBernoulliBatchRate checks the gap-skipping admission law concentrates
// on p*n like the per-element path.
func TestBernoulliBatchRate(t *testing.T) {
	const n = 200000
	const p = 0.03
	b := NewBernoulli[int64](p)
	r := rng.New(8)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(i)
	}
	got := 0
	for i := 0; i < n; i += 1000 {
		got += b.OfferBatch(stream[i:i+1000], r)
	}
	want := float64(n) * p
	if math.Abs(float64(got)-want) > 4*math.Sqrt(want) {
		t.Fatalf("batch admitted %d, want ~%.0f", got, want)
	}
	if b.Len() != got || b.Rounds() != n {
		t.Fatalf("bookkeeping: len=%d admitted=%d rounds=%d", b.Len(), got, b.Rounds())
	}
}

// TestBernoulliBatchTinyRate: microscopic (but valid) rates produce
// astronomically large geometric gaps; the draw must saturate rather than
// overflow into a negative skip (which previously indexed out of range).
func TestBernoulliBatchTinyRate(t *testing.T) {
	b := NewBernoulli[int64](1e-20)
	r := rng.New(1)
	stream := testStream(1000)
	for i := 0; i < 5; i++ {
		if got := b.OfferBatch(stream, r); got != 0 {
			t.Fatalf("batch %d admitted %d at p=1e-20", i, got)
		}
	}
	if b.Rounds() != 5000 || b.Len() != 0 {
		t.Fatalf("rounds=%d len=%d", b.Rounds(), b.Len())
	}
}

// TestBernoulliBatchEdgeRates covers the degenerate rates.
func TestBernoulliBatchEdgeRates(t *testing.T) {
	r := rng.New(1)
	all := NewBernoulli[int64](1)
	if got := all.OfferBatch([]int64{4, 5, 6}, r); got != 3 {
		t.Fatalf("p=1 admitted %d of 3", got)
	}
	none := NewBernoulli[int64](0)
	if got := none.OfferBatch([]int64{4, 5, 6}, r); got != 0 || none.Len() != 0 {
		t.Fatalf("p=0 admitted %d", got)
	}
	if got := all.OfferBatch(nil, r); got != 0 {
		t.Fatalf("empty batch admitted %d", got)
	}
}

func BenchmarkReservoirOfferBatch(b *testing.B) {
	stream := testStream(1 << 16)
	res := NewReservoir[int64](1024)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.OfferBatch(stream, r)
	}
}

func BenchmarkBernoulliOfferBatch(b *testing.B) {
	stream := testStream(1 << 16)
	s := NewBernoulli[int64](0.01)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.OfferBatch(stream, r)
	}
}
