package sampler

import (
	"math"

	"robustsample/internal/rng"
)

// ReservoirL is Vitter's Algorithm L, a skip-based reservoir sampler that
// produces a sample with exactly the same distribution as Algorithm R
// (Reservoir) but in O(k (1 + log(n/k))) expected random draws instead of
// one draw per element: after the reservoir fills, it computes how many
// elements to skip before the next admission by inverting the geometric-like
// skip distribution.
//
// Algorithm L matters for this repository in two ways. First, it is the
// practical high-throughput variant a downstream system would deploy, so
// the ablation experiment (E17) measures both its speed advantage and its
// identical robustness profile. Second, its admission pattern is decided
// *ahead of observing elements*: the skip counter is fixed before the next
// element arrives. Against an adaptive adversary this is exactly as safe as
// Algorithm R — admissions in both are independent of element values — and
// the ablation confirms the attack outcomes match.
type ReservoirL[T any] struct {
	// K is the reservoir capacity.
	K int

	items    []T
	rounds   int
	admitted int
	delta    sampleDelta[T]

	// w is the Algorithm L auxiliary variable: the running product of
	// u^(1/k) draws; skip counts are derived from it.
	w float64
	// skip is the number of upcoming elements to pass over before the
	// next admission (-1 until the reservoir fills).
	skip int64
}

// NewReservoirL returns an Algorithm L reservoir of capacity k. It panics
// unless k >= 1.
func NewReservoirL[T any](k int) *ReservoirL[T] {
	if k < 1 {
		panic("sampler: reservoir capacity must be >= 1")
	}
	return &ReservoirL[T]{K: k, items: make([]T, 0, k), w: 1, skip: -1}
}

// Offer processes the next stream element, returning whether it entered the
// reservoir.
func (v *ReservoirL[T]) Offer(x T, r *rng.RNG) bool {
	v.rounds++
	v.delta.clear()
	if len(v.items) < v.K {
		v.items = append(v.items, x)
		v.admitted++
		v.delta.add(x)
		if len(v.items) == v.K {
			v.advance(r)
		}
		return true
	}
	if v.skip > 0 {
		v.skip--
		return false
	}
	// skip == 0: admit this element into a uniform slot, then draw the
	// next skip.
	j := r.Intn(v.K)
	v.delta.remove(v.items[j])
	v.items[j] = x
	v.admitted++
	v.delta.add(x)
	v.advance(r)
	return true
}

// OfferBatch processes a run of consecutive stream elements in one call. It
// draws exactly the same randomness as per-element Offers (bit-identical
// samples, chunking invariant) but strides directly from admission to
// admission: the pending skip consumes a whole rejected stretch in one
// subtraction, so the steady-state cost is O(1) per admission plus O(1)
// per batch, not one branch per element.
//
//robust:hotpath
func (v *ReservoirL[T]) OfferBatch(xs []T, r *rng.RNG) int {
	v.delta.clear()
	n := len(xs)
	admitted, i := 0, 0
	// Fill phase: the first K elements are stored without randomness; the
	// first skip is drawn the moment the reservoir fills.
	for i < n && len(v.items) < v.K {
		v.items = append(v.items, xs[i])
		v.delta.add(xs[i])
		v.rounds++
		v.admitted++
		admitted++
		i++
		if len(v.items) == v.K {
			v.advance(r)
		}
	}
	// Steady state: skip is always >= 0 here (advance ran at fill time),
	// and each iteration lands exactly on the next admitted index.
	for i < n {
		if v.skip >= int64(n-i) {
			v.skip -= int64(n - i)
			v.rounds += n - i
			return admitted
		}
		i += int(v.skip)
		v.rounds += int(v.skip) + 1
		x := xs[i]
		i++
		j := r.Intn(v.K)
		v.delta.remove(v.items[j])
		v.items[j] = x
		v.admitted++
		v.delta.add(x)
		admitted++
		v.advance(r)
	}
	return admitted
}

// LastDelta reports the element admitted by the most recent Offer and the
// element it evicted, if any (or the cumulative delta of the most recent
// OfferBatch).
func (v *ReservoirL[T]) LastDelta() (added, removed []T) { return v.delta.view() }

// advance updates w and draws the next skip count per Algorithm L:
//
//	w <- w * exp(log(u1)/k)
//	skip <- floor( log(u2) / log(1-w) )
func (v *ReservoirL[T]) advance(r *rng.RNG) {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	v.w *= math.Exp(math.Log(u1) / float64(v.K))
	u2 := r.Float64()
	for u2 == 0 {
		u2 = r.Float64()
	}
	denom := math.Log1p(-v.w)
	if denom == 0 {
		// w rounded to 0: skips become astronomically large; saturate.
		v.skip = math.MaxInt64
		return
	}
	v.skip = int64(math.Floor(math.Log(u2) / denom))
	if v.skip < 0 {
		v.skip = 0
	}
}

// View returns the current sample without copying; callers must not mutate.
func (v *ReservoirL[T]) View() []T { return v.items }

// Sample returns a copy of the current sample.
func (v *ReservoirL[T]) Sample() []T { return append([]T(nil), v.items...) }

// Len returns the current sample size.
func (v *ReservoirL[T]) Len() int { return len(v.items) }

// Rounds returns the number of elements offered so far.
func (v *ReservoirL[T]) Rounds() int { return v.rounds }

// TotalAdmitted returns the number of elements ever admitted (k' in the
// Section 5 attack analysis).
func (v *ReservoirL[T]) TotalAdmitted() int { return v.admitted }

// Reset clears the sampler for a fresh stream.
func (v *ReservoirL[T]) Reset() {
	v.items = v.items[:0]
	v.rounds = 0
	v.admitted = 0
	v.delta.clear()
	v.w = 1
	v.skip = -1
}
