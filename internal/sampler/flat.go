package sampler

// Flat-state views: a sampler's mutable state — sample items plus a few
// scalar counters — can live in caller-owned, pointer-free storage (a slab
// slot) instead of the sampler's own heap slices. AttachFlat points one
// reusable "scratch" sampler at that storage and DetachFlat writes the
// counters back, so a process can serve a million tenant sketches with one
// sampler object per shard: the algorithms run unchanged on the attached
// slices, which keeps every determinism pin (per-element and batch
// randomness consumption, chunking invariance, snapshot codecs)
// byte-identical to a standalone sampler.
//
// The counter words use a fixed layout per sampler type (documented at the
// *FlatWords constants). Only the counters the algorithms mutate are
// stored; configuration (K, P) stays on the scratch sampler, which every
// tenant of a farm shares.

// ReservoirFlatWords is the counter-word footprint of a flat Reservoir:
// word 0 rounds, word 1 admitted, word 2 sample length.
const ReservoirFlatWords = 3

// BernoulliFlatWords is the counter-word footprint of a flat Bernoulli:
// word 0 rounds, word 1 pending gap skip, word 2 skip-valid flag, word 3
// sample length.
const BernoulliFlatWords = 4

// AttachFlat binds v to caller-owned flat state: storage holds the sample
// items (its capacity must be at least v.K and it must not alias another
// live sampler's items) and words holds ReservoirFlatWords counters as
// written by a previous DetachFlat (all-zero words mean a fresh sampler).
// Until DetachFlat, the sampler reads and writes that storage in place.
func (v *Reservoir[T]) AttachFlat(storage []T, words []uint64) {
	v.items = storage[:int(words[2])]
	v.rounds = int(words[0])
	v.admitted = int(words[1])
	v.delta.clear()
}

// DetachFlat writes v's counters back into words and releases the attached
// storage, leaving v ready for the next AttachFlat. It returns the item
// slice as of detach: for a Reservoir this is always the attached storage
// (the sample never outgrows K).
func (v *Reservoir[T]) DetachFlat(words []uint64) []T {
	words[0] = uint64(v.rounds)
	words[1] = uint64(v.admitted)
	words[2] = uint64(len(v.items))
	items := v.items
	v.items = nil
	v.rounds = 0
	v.admitted = 0
	v.delta.clear()
	return items
}

// AttachFlat binds b to caller-owned flat state; see Reservoir.AttachFlat.
// words holds BernoulliFlatWords counters.
func (b *Bernoulli[T]) AttachFlat(storage []T, words []uint64) {
	b.items = storage[:int(words[3])]
	b.rounds = int(words[0])
	b.skip = int64(words[1])
	b.hasSkip = words[2] != 0
	b.delta.clear()
}

// DetachFlat writes b's counters back into words and returns the item
// slice as of detach. A Bernoulli sample grows without bound, so the
// returned slice may have outgrown the attached storage (append spilled to
// the heap); the caller detects this by comparing the returned length to
// the storage capacity and migrates the sample to a larger slot.
func (b *Bernoulli[T]) DetachFlat(words []uint64) []T {
	words[0] = uint64(b.rounds)
	words[1] = uint64(b.skip)
	if b.hasSkip {
		words[2] = 1
	} else {
		words[2] = 0
	}
	words[3] = uint64(len(b.items))
	items := b.items
	b.items = nil
	b.rounds = 0
	b.skip = 0
	b.hasSkip = false
	b.delta.clear()
	return items
}
