package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
)

func TestAlgorithmLCapacity(t *testing.T) {
	r := rng.New(1)
	v := NewReservoirL[int64](10)
	for i := int64(0); i < 5000; i++ {
		v.Offer(i, r)
		if v.Len() > 10 {
			t.Fatal("capacity exceeded")
		}
	}
	if v.Len() != 10 || v.Rounds() != 5000 {
		t.Fatalf("len=%d rounds=%d", v.Len(), v.Rounds())
	}
}

func TestAlgorithmLPrefixKeptWhole(t *testing.T) {
	r := rng.New(2)
	v := NewReservoirL[int64](5)
	for i := int64(1); i <= 5; i++ {
		if !v.Offer(i, r) {
			t.Fatal("fill phase must admit everything")
		}
	}
	got := SortedCopy(v.View())
	for i, x := range got {
		if x != int64(i+1) {
			t.Fatalf("prefix not stored: %v", got)
		}
	}
}

func TestAlgorithmLUniformInclusion(t *testing.T) {
	// The defining property: identical distribution to Algorithm R —
	// every element in the final sample with probability exactly k/n.
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	root := rng.New(3)
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoirL[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
		}
		for _, x := range v.View() {
			counts[x]++
		}
	}
	want := float64(trials) * k / n
	sd := math.Sqrt(want * (1 - float64(k)/n))
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 5*sd {
			t.Fatalf("position %d included %d times, want %v +/- %v", pos, c, want, 5*sd)
		}
	}
}

func TestAlgorithmLLongStreamInclusion(t *testing.T) {
	// Check inclusion at a longer stream where skips dominate: last and
	// first elements must both be included at rate ~k/n.
	const n, k, trials = 2000, 10, 20000
	root := rng.New(4)
	first, last := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoirL[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
		}
		for _, x := range v.View() {
			if x == 0 {
				first++
			}
			if x == n-1 {
				last++
			}
		}
	}
	want := float64(trials) * k / n
	sd := math.Sqrt(want)
	if math.Abs(float64(first)-want) > 6*sd {
		t.Fatalf("first element included %d times, want ~%v", first, want)
	}
	if math.Abs(float64(last)-want) > 6*sd {
		t.Fatalf("last element included %d times, want ~%v", last, want)
	}
}

func TestAlgorithmLMatchesAlgorithmRAdmissionCount(t *testing.T) {
	// E[k'] must match Algorithm R's k(1 + ln(n/k)) law.
	const n, k, trials = 2000, 10, 300
	root := rng.New(5)
	total := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		v := NewReservoirL[int](k)
		for i := 0; i < n; i++ {
			v.Offer(i, r)
		}
		total += v.TotalAdmitted()
	}
	mean := float64(total) / trials
	predicted := float64(k) * (1 + math.Log(float64(n)/float64(k)))
	if mean < predicted*0.85 || mean > predicted*1.15 {
		t.Fatalf("mean admitted %v, Algorithm R law predicts ~%v", mean, predicted)
	}
}

func TestAlgorithmLReset(t *testing.T) {
	r := rng.New(6)
	v := NewReservoirL[int](3)
	for i := 0; i < 100; i++ {
		v.Offer(i, r)
	}
	v.Reset()
	if v.Len() != 0 || v.Rounds() != 0 || v.TotalAdmitted() != 0 {
		t.Fatal("reset failed")
	}
	// Usable after reset.
	for i := 0; i < 10; i++ {
		v.Offer(i, r)
	}
	if v.Len() != 3 {
		t.Fatal("not usable after reset")
	}
}

func TestAlgorithmLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoirL[int](0)
}

func TestAlgorithmLSampleSubsetOfStream(t *testing.T) {
	root := rng.New(7)
	f := func(nRaw uint8) bool {
		n := int(nRaw) + 1
		r := root.Split()
		v := NewReservoirL[int64](4)
		for i := 0; i < n; i++ {
			v.Offer(int64(i), r)
		}
		for _, x := range v.View() {
			if x < 0 || x >= int64(n) {
				return false
			}
		}
		return v.Len() == min(4, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmLSampleIsCopy(t *testing.T) {
	r := rng.New(8)
	v := NewReservoirL[int](1)
	v.Offer(7, r)
	s := v.Sample()
	s[0] = 99
	if v.View()[0] != 7 {
		t.Fatal("Sample aliases internal state")
	}
}

func BenchmarkAlgorithmLOffer(b *testing.B) {
	r := rng.New(1)
	s := NewReservoirL[int64](1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), r)
	}
}
