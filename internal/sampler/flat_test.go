package sampler

import (
	"testing"

	"robustsample/internal/rng"
)

// TestReservoirFlatDifferential pins the farm's core guarantee: a sampler
// cycled through AttachFlat/DetachFlat around every batch produces exactly
// the state and randomness consumption of a standalone sampler.
func TestReservoirFlatDifferential(t *testing.T) {
	const k, n = 16, 5000
	ref := NewReservoir[int64](k)
	rRef := rng.New(7)
	scratch := &Reservoir[int64]{K: k}
	rFlat := rng.New(7)
	storage := make([]int64, k)
	words := make([]uint64, ReservoirFlatWords)

	stream := rng.New(99)
	buf := make([]int64, 0, 64)
	for len(buf) == 0 || true {
		buf = buf[:0]
		sz := 1 + int(stream.Uint64()%37)
		for j := 0; j < sz; j++ {
			buf = append(buf, int64(stream.Uint64()%100000)+1)
		}
		wantAdm := ref.OfferBatch(buf, rRef)

		scratch.AttachFlat(storage, words)
		gotAdm := scratch.OfferBatch(buf, rFlat)
		got := scratch.DetachFlat(words)

		if wantAdm != gotAdm {
			t.Fatalf("admitted diverged: %d vs %d", gotAdm, wantAdm)
		}
		if ref.Rounds() >= n {
			if int(words[0]) != ref.Rounds() || int(words[1]) != ref.TotalAdmitted() || int(words[2]) != ref.Len() {
				t.Fatalf("counters diverged: words=%v ref rounds=%d admitted=%d len=%d",
					words, ref.Rounds(), ref.TotalAdmitted(), ref.Len())
			}
			for i, x := range ref.View() {
				if got[i] != x {
					t.Fatalf("sample diverged at %d: %d vs %d", i, got[i], x)
				}
			}
			if h1, l1 := rRef.State(); true {
				h2, l2 := rFlat.State()
				if h1 != h2 || l1 != l2 {
					t.Fatal("RNG state diverged: flat path consumed different randomness")
				}
			}
			return
		}
	}
}

// TestBernoulliFlatDifferential is the Bernoulli analogue, including the
// gap-skip counter that carries across batches.
func TestBernoulliFlatDifferential(t *testing.T) {
	const p, n = 0.01, 20000
	ref := NewBernoulli[int64](p)
	rRef := rng.New(11)
	scratch := &Bernoulli[int64]{P: p}
	rFlat := rng.New(11)
	storage := make([]int64, 8) // deliberately tiny: exercises heap spill
	words := make([]uint64, BernoulliFlatWords)

	stream := rng.New(5)
	buf := make([]int64, 0, 64)
	for ref.Rounds() < n {
		buf = buf[:0]
		sz := 1 + int(stream.Uint64()%53)
		for j := 0; j < sz; j++ {
			buf = append(buf, int64(stream.Uint64()%100000)+1)
		}
		wantAdm := ref.OfferBatch(buf, rRef)

		scratch.AttachFlat(storage, words)
		gotAdm := scratch.OfferBatch(buf, rFlat)
		got := scratch.DetachFlat(words)
		if wantAdm != gotAdm {
			t.Fatalf("admitted diverged: %d vs %d", gotAdm, wantAdm)
		}
		// Migrate to larger storage when the sample outgrew the slot — the
		// size-class upgrade the farm performs.
		if len(got) > cap(storage) {
			storage = make([]int64, 2*len(got))
		}
		copy(storage, got)
	}
	if int(words[0]) != ref.Rounds() || int(words[3]) != ref.Len() {
		t.Fatalf("counters diverged: words=%v ref rounds=%d len=%d", words, ref.Rounds(), ref.Len())
	}
	for i, x := range ref.View() {
		if storage[i] != x {
			t.Fatalf("sample diverged at %d", i)
		}
	}
	h1, l1 := rRef.State()
	h2, l2 := rFlat.State()
	if h1 != h2 || l1 != l2 {
		t.Fatal("RNG state diverged")
	}
}

// TestFlatInterleavedTenants checks that one scratch sampler multiplexed
// across several flat states cannot leak state between them: each flat
// state evolves exactly like its own dedicated sampler.
func TestFlatInterleavedTenants(t *testing.T) {
	const k, tenants = 8, 5
	refs := make([]*Reservoir[int64], tenants)
	refRNGs := make([]*rng.RNG, tenants)
	storages := make([][]int64, tenants)
	wordss := make([][]uint64, tenants)
	flatRNGs := make([]*rng.RNG, tenants)
	for i := range refs {
		refs[i] = NewReservoir[int64](k)
		refRNGs[i] = rng.NewWithStream(3, uint64(i))
		flatRNGs[i] = rng.NewWithStream(3, uint64(i))
		storages[i] = make([]int64, k)
		wordss[i] = make([]uint64, ReservoirFlatWords)
	}
	scratch := &Reservoir[int64]{K: k}
	stream := rng.New(1)
	buf := make([]int64, 0, 16)
	for round := 0; round < 400; round++ {
		tid := int(stream.Uint64() % tenants)
		buf = buf[:0]
		for j := 0; j <= int(stream.Uint64()%9); j++ {
			buf = append(buf, int64(stream.Uint64()%999)+1)
		}
		refs[tid].OfferBatch(buf, refRNGs[tid])
		scratch.AttachFlat(storages[tid], wordss[tid])
		scratch.OfferBatch(buf, flatRNGs[tid])
		scratch.DetachFlat(wordss[tid])
	}
	for i := range refs {
		if int(wordss[i][2]) != refs[i].Len() || int(wordss[i][0]) != refs[i].Rounds() {
			t.Fatalf("tenant %d counters diverged", i)
		}
		for j, x := range refs[i].View() {
			if storages[i][j] != x {
				t.Fatalf("tenant %d sample diverged at %d", i, j)
			}
		}
	}
}
