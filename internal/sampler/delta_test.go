package sampler

import (
	"testing"

	"robustsample/internal/rng"
)

// deltaSampler is the per-Offer change-reporting surface shared by all
// int64 samplers in this package.
type deltaSampler interface {
	Offer(x int64, r *rng.RNG) bool
	View() []int64
	Reset()
	LastDelta() (added, removed []int64)
}

// TestLastDeltaTracksView replays every sampler's deltas into a shadow
// multiset and checks it equals the actual sample view after every round —
// the invariant the continuous game's incremental accumulator relies on.
func TestLastDeltaTracksView(t *testing.T) {
	cases := []struct {
		name string
		mk   func() deltaSampler
	}{
		{"bernoulli", func() deltaSampler { return NewBernoulli[int64](0.3) }},
		{"reservoir", func() deltaSampler { return NewReservoir[int64](8) }},
		{"reservoirL", func() deltaSampler { return NewReservoirL[int64](8) }},
		{"with-replacement", func() deltaSampler { return NewWithReplacement[int64](8) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(11)
			s := tc.mk()
			shadow := map[int64]int{}
			for i := 0; i < 500; i++ {
				x := 1 + r.Int63n(50)
				admitted := s.Offer(x, r)
				checkDeltaAgainstShadow(t, i, s, shadow, admitted)
			}
			// Reset must clear the pending delta.
			s.Reset()
			if added, removed := s.LastDelta(); len(added) != 0 || len(removed) != 0 {
				t.Fatalf("delta survives Reset: +%v -%v", added, removed)
			}
		})
	}
}

// deltaViewer is the read side of deltaSampler, shared with the weighted
// variant (whose Offer takes a weight).
type deltaViewer interface {
	View() []int64
	LastDelta() (added, removed []int64)
}

// checkDeltaAgainstShadow replays one round's delta into the shadow multiset
// and checks it matches the sampler's view.
func checkDeltaAgainstShadow(t *testing.T, round int, s deltaViewer, shadow map[int64]int, admitted bool) {
	t.Helper()
	added, removed := s.LastDelta()
	if !admitted && (len(added) != 0 || len(removed) != 0) {
		t.Fatalf("round %d: rejected offer reported delta +%v -%v", round, added, removed)
	}
	for _, v := range removed {
		shadow[v]--
		if shadow[v] < 0 {
			t.Fatalf("round %d: removed %d not in shadow sample", round, v)
		}
		if shadow[v] == 0 {
			delete(shadow, v)
		}
	}
	for _, v := range added {
		shadow[v]++
	}
	view := map[int64]int{}
	for _, v := range s.View() {
		view[v]++
	}
	if len(view) != len(shadow) {
		t.Fatalf("round %d: shadow %v != view %v", round, shadow, view)
	}
	for v, c := range view { //robust:nondet order-insensitive multiset equality check

		if shadow[v] != c {
			t.Fatalf("round %d: shadow %v != view %v", round, shadow, view)
		}
	}
}

// TestWeightedReservoirLastDelta mirrors TestLastDeltaTracksView for the
// weighted sampler (whose Offer carries a weight): replayed deltas must
// track the heap-ordered view exactly, including root displacements.
func TestWeightedReservoirLastDelta(t *testing.T) {
	r := rng.New(13)
	w := NewWeightedReservoir[int64](8)
	shadow := map[int64]int{}
	for i := 0; i < 500; i++ {
		x := 1 + r.Int63n(50)
		weight := 0.25 + r.Float64()*4
		if i%97 == 0 {
			weight = 0 // never admitted; must report an empty delta
		}
		admitted := w.Offer(x, weight, r)
		checkDeltaAgainstShadow(t, i, w, shadow, admitted)
	}
	w.Reset()
	if added, removed := w.LastDelta(); len(added) != 0 || len(removed) != 0 {
		t.Fatalf("delta survives Reset: +%v -%v", added, removed)
	}
}
