package detsamp

import "testing"

// FuzzMergeReduceBound checks, on arbitrary insertion orders, that the
// deterministic summary conserves weight and stays within its own
// worst-case error bound.
func FuzzMergeReduceBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 254, 253, 252})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1024 {
			return
		}
		m, newErr := New(8)
		if newErr != nil {
			t.Fatal(newErr)
		}
		stream := make([]int64, 0, len(data))
		for _, b := range data {
			v := int64(b) + 1
			stream = append(stream, v)
			m.Insert(v)
		}
		total := int64(0)
		for _, wv := range m.WeightedValues() {
			total += wv.Weight
		}
		if total != int64(len(data)) {
			t.Fatalf("weight %d != n %d", total, len(data))
		}
		err := PrefixDiscrepancy(stream, m.WeightedValues())
		// ErrorBound is the worst case over the occupied levels; allow
		// tiny float slack.
		if err > m.ErrorBound()+1e-9 {
			t.Fatalf("error %v exceeds deterministic bound %v", err, m.ErrorBound())
		}
	})
}
