package detsamp

import (
	"errors"
	"math"
	"slices"
	"sort"
	"testing"

	"robustsample/internal/rng"
)

// mustNew unwraps a constructor result whose parameters are valid by
// construction in these tests.
func mustNew[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestValidation(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{second(New(1)), ErrBadBuffer},
		{second(NewForEps(0, 10)), ErrBadEps},
		{second(NewForEps(1, 10)), ErrBadEps},
		{second(NewForEps(0.1, 0)), ErrBadHint},
	}
	for i, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("case %d: err = %v, want %v", i, c.err, c.want)
		}
	}
	// Querying an empty summary remains an invariant panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty Quantile")
		}
	}()
	mustNew(New(4)).Quantile(0.5)
}

func second[T any](_ T, err error) error { return err }

func TestOddBufferRoundedUp(t *testing.T) {
	m := mustNew(New(3))
	if m.B != 4 {
		t.Fatalf("B = %d, want 4", m.B)
	}
}

func TestWeightConservation(t *testing.T) {
	r := rng.New(1)
	m := mustNew(New(16))
	const n = 12345
	for i := 0; i < n; i++ {
		m.Insert(r.Int63n(1 << 20))
	}
	total := int64(0)
	for _, wv := range m.WeightedValues() {
		total += wv.Weight
	}
	if total != n {
		t.Fatalf("total weight %d, want %d", total, n)
	}
	if m.N() != n {
		t.Fatal("N mismatch")
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	r := rng.New(2)
	m := mustNew(New(64))
	const n = 200000
	for i := 0; i < n; i++ {
		m.Insert(r.Int63n(1 << 30))
	}
	// Space: B per occupied level, ~log2(n/B) levels.
	maxSpace := 64 * (int(math.Log2(float64(n)/64)) + 3)
	if m.Size() > maxSpace {
		t.Fatalf("size %d exceeds O(B log(n/B)) = %d", m.Size(), maxSpace)
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() []WeightedValue {
		m := mustNew(New(8))
		for i := 0; i < 1000; i++ {
			m.Insert(int64(i*7919%1000 + 1))
		}
		return m.WeightedValues()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic contents")
		}
	}
}

func TestErrorWithinBoundRandomOrder(t *testing.T) {
	r := rng.New(3)
	eps := 0.05
	const n = 50000
	m := mustNew(NewForEps(eps, n))
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1<<20)
		m.Insert(stream[i])
	}
	err := PrefixDiscrepancy(stream, m.WeightedValues())
	if err > eps {
		t.Fatalf("deterministic summary error %v exceeds eps %v", err, eps)
	}
}

func TestErrorWithinBoundSortedOrder(t *testing.T) {
	eps := 0.05
	const n = 50000
	for _, dir := range []string{"asc", "desc"} {
		m := mustNew(NewForEps(eps, n))
		stream := make([]int64, n)
		for i := range stream {
			if dir == "asc" {
				stream[i] = int64(i + 1)
			} else {
				stream[i] = int64(n - i)
			}
			m.Insert(stream[i])
		}
		err := PrefixDiscrepancy(stream, m.WeightedValues())
		if err > eps {
			t.Fatalf("%s order: error %v exceeds eps %v", dir, err, eps)
		}
	}
}

func TestErrorWithinBoundAdversarialPermutation(t *testing.T) {
	// Determinism means ANY order is fine; exercise a bit-reversal
	// permutation, a classically bad case for naive buffering.
	eps := 0.05
	const bits = 15
	const n = 1 << bits
	m := mustNew(NewForEps(eps, n))
	stream := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		v := int64(rev + 1)
		stream = append(stream, v)
		m.Insert(v)
	}
	err := PrefixDiscrepancy(stream, m.WeightedValues())
	if err > eps {
		t.Fatalf("bit-reversal order: error %v exceeds eps %v", err, eps)
	}
}

func TestErrorBoundFormula(t *testing.T) {
	m := mustNew(New(32))
	for i := 0; i < 10000; i++ {
		m.Insert(int64(i))
	}
	want := float64(m.Levels()) / 64
	if m.ErrorBound() != want {
		t.Fatalf("ErrorBound %v, want %v", m.ErrorBound(), want)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	r := rng.New(4)
	const n = 30000
	m := mustNew(NewForEps(0.02, n))
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = r.Int63n(1 << 20)
		m.Insert(stream[i])
	}
	sorted := append([]int64(nil), stream...)
	slices.Sort(sorted)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := m.Quantile(q)
		// True rank of the returned value must be within 3% of q*n.
		rank := sort.Search(len(sorted), func(i int) bool { return sorted[i] > got })
		if math.Abs(float64(rank)-q*n) > 0.03*n {
			t.Fatalf("q=%v: returned value has rank %d, want ~%v", q, rank, q*n)
		}
	}
}

func TestRankMatchesWeightedValues(t *testing.T) {
	m := mustNew(New(4))
	for _, v := range []int64{5, 1, 9, 3} { // exactly one full buffer
		m.Insert(v)
	}
	// Buffer full: level 0 holds sorted [1,3,5,9] at weight 1.
	if got := m.Rank(4); got != 2 {
		t.Fatalf("Rank(4) = %v, want 2", got)
	}
	if got := m.Rank(0); got != 0 {
		t.Fatalf("Rank(0) = %v, want 0", got)
	}
	if got := m.Rank(9); got != 4 {
		t.Fatalf("Rank(9) = %v, want 4", got)
	}
}

func TestPartialBufferIncluded(t *testing.T) {
	m := mustNew(New(8))
	m.Insert(42)
	wvs := m.WeightedValues()
	if len(wvs) != 1 || wvs[0].Value != 42 || wvs[0].Weight != 1 {
		t.Fatalf("partial buffer contents wrong: %v", wvs)
	}
	if m.Quantile(0.5) != 42 {
		t.Fatal("quantile from partial buffer wrong")
	}
}

func TestPrefixDiscrepancyEdges(t *testing.T) {
	if PrefixDiscrepancy(nil, nil) != 0 {
		t.Fatal("empty stream should give 0")
	}
	if PrefixDiscrepancy([]int64{1}, nil) != 1 {
		t.Fatal("empty summary should give 1")
	}
	sum := []WeightedValue{{Value: 1, Weight: 1}}
	if PrefixDiscrepancy([]int64{1}, sum) != 0 {
		t.Fatal("perfect summary should give 0")
	}
}

func TestReduceKeepsOddIndexed(t *testing.T) {
	a := []int64{1, 3, 5, 7}
	b := []int64{2, 4, 6, 8}
	out := reduce(a, b)
	want := []int64{2, 4, 6, 8}
	if len(out) != 4 {
		t.Fatalf("reduce output length %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("reduce = %v, want %v", out, want)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rng.New(1)
	m := mustNew(NewForEps(0.01, 1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(r.Int63n(1 << 30))
	}
}

func BenchmarkPrefixDiscrepancy(b *testing.B) {
	r := rng.New(1)
	m := mustNew(NewForEps(0.01, 100000))
	stream := make([]int64, 100000)
	for i := range stream {
		stream[i] = r.Int63n(1 << 20)
		m.Insert(stream[i])
	}
	wvs := m.WeightedValues()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixDiscrepancy(stream, wvs)
	}
}
