// Package detsamp implements a deterministic streaming eps-approximation
// for interval ranges via the classic merge-reduce scheme (Munro-Paterson /
// Manku-Rajagopalan-Lindsay style, the ancestor of the Bagchi et al.
// [BCEG07] deterministic sampler the paper compares against in Section 1.1).
//
// Being deterministic, the summary is adversarially robust "for free": the
// adversary can see the whole state, yet the output is an
// eps-approximation of ANY input stream. The trade-offs the paper
// highlights — more intricate algorithm, space with log factors in n, and
// the need to process every element — are exactly what experiment E14
// measures against the randomized robust samplers.
//
// Scheme: elements accumulate in a level-0 buffer of size B. A full buffer
// is sorted and carried up: whenever two buffers occupy the same level,
// they are merged (sorted) and halved by keeping the odd-indexed elements,
// producing one buffer one level higher whose elements each represent
// 2^(level) stream elements. A buffer at level l introduces rank error at
// most 2^(l-1) per reduce, totalling <= L*n/(2B) over the stream where
// L = ceil(log2(n/B)) is the number of levels, i.e. relative error L/(2B).
package detsamp

import (
	"cmp"
	"errors"
	"math"
	"slices"
)

// WeightedValue is a summary element standing for Weight stream elements
// less than or equal to Value (in rank terms).
type WeightedValue struct {
	Value  int64
	Weight int64
}

// MergeReduce is the deterministic summary. The zero value is not usable;
// construct with New or NewForEps.
type MergeReduce struct {
	// B is the buffer size; each full buffer holds exactly B sorted
	// values.
	B int

	accum  []int64   // level-0 accumulation buffer, unsorted
	levels [][]int64 // levels[l]: nil or a sorted buffer of B values with weight 2^l
	n      int
}

// Sentinel errors for constructor parameter validation; internal invariant
// violations (e.g. querying an empty summary) still panic.
var (
	// ErrBadBuffer reports a buffer size below 2.
	ErrBadBuffer = errors.New("detsamp: buffer size must be >= 2")
	// ErrBadEps reports an error parameter outside (0, 1).
	ErrBadEps = errors.New("detsamp: eps must be in (0, 1)")
	// ErrBadHint reports a non-positive stream-length hint.
	ErrBadHint = errors.New("detsamp: stream-length hint must be >= 1")
)

// New returns a merge-reduce summary with buffer size b (rounded up to
// even). It reports ErrBadBuffer unless b >= 2.
func New(b int) (*MergeReduce, error) {
	if b < 2 {
		return nil, ErrBadBuffer
	}
	if b%2 == 1 {
		b++
	}
	return &MergeReduce{B: b}, nil
}

// NewForEps returns a summary sized so that the rank error is at most eps*n
// for streams up to length nHint: B = 2 * ceil(L / (2*eps)) with
// L = ceil(log2(nHint)) + 1 levels. It reports ErrBadEps or ErrBadHint on
// invalid parameters.
func NewForEps(eps float64, nHint int) (*MergeReduce, error) {
	if eps <= 0 || eps >= 1 {
		return nil, ErrBadEps
	}
	if nHint < 1 {
		return nil, ErrBadHint
	}
	levels := math.Ceil(math.Log2(math.Max(float64(nHint), 2))) + 1
	b := int(math.Ceil(levels / (2 * eps)))
	if b < 2 {
		b = 2
	}
	return New(b)
}

// Insert folds in one stream element.
func (m *MergeReduce) Insert(x int64) {
	m.n++
	m.accum = append(m.accum, x)
	if len(m.accum) < m.B {
		return
	}
	buf := append([]int64(nil), m.accum...)
	m.accum = m.accum[:0]
	slices.Sort(buf)
	m.carry(0, buf)
}

// carry places a full sorted buffer at the given level, reducing upward
// while the level is occupied.
func (m *MergeReduce) carry(level int, buf []int64) {
	for {
		for level >= len(m.levels) {
			m.levels = append(m.levels, nil)
		}
		if m.levels[level] == nil {
			m.levels[level] = buf
			return
		}
		buf = reduce(m.levels[level], buf)
		m.levels[level] = nil
		level++
	}
}

// reduce merges two sorted buffers of size B and keeps the odd-indexed
// elements of the merge, returning a sorted buffer of size B one level up.
func reduce(a, b []int64) []int64 {
	merged := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	out := make([]int64, 0, len(merged)/2)
	for k := 1; k < len(merged); k += 2 {
		out = append(out, merged[k])
	}
	return out
}

// N returns the number of inserted elements.
func (m *MergeReduce) N() int { return m.n }

// Size returns the number of stored values (space usage).
func (m *MergeReduce) Size() int {
	total := len(m.accum)
	for _, l := range m.levels {
		total += len(l)
	}
	return total
}

// Levels returns the number of allocated levels.
func (m *MergeReduce) Levels() int { return len(m.levels) }

// ErrorBound returns the deterministic worst-case relative rank error of
// the current summary: L/(2B) over the occupied levels.
func (m *MergeReduce) ErrorBound() float64 {
	return float64(len(m.levels)) / (2 * float64(m.B))
}

// WeightedValues returns the summary contents: level-l values with weight
// 2^l plus the partial accumulation buffer with weight 1, sorted by value.
// The total weight equals N().
func (m *MergeReduce) WeightedValues() []WeightedValue {
	var out []WeightedValue
	for _, x := range m.accum {
		out = append(out, WeightedValue{Value: x, Weight: 1})
	}
	w := int64(1)
	for _, level := range m.levels {
		for _, x := range level {
			out = append(out, WeightedValue{Value: x, Weight: w})
		}
		w *= 2
	}
	slices.SortFunc(out, func(a, b WeightedValue) int { return cmp.Compare(a.Value, b.Value) })
	return out
}

// Rank estimates |{ j : x_j <= x }| from the weighted summary.
func (m *MergeReduce) Rank(x int64) float64 {
	total := int64(0)
	for _, wv := range m.WeightedValues() {
		if wv.Value <= x {
			total += wv.Weight
		}
	}
	return float64(total)
}

// Quantile returns a value of approximate rank q*n. It panics if empty.
func (m *MergeReduce) Quantile(q float64) int64 {
	wvs := m.WeightedValues()
	if len(wvs) == 0 {
		panic("detsamp: empty summary")
	}
	target := q * float64(m.n)
	acc := int64(0)
	for _, wv := range wvs {
		acc += wv.Weight
		if float64(acc) >= target {
			return wv.Value
		}
	}
	return wvs[len(wvs)-1].Value
}

// PrefixDiscrepancy returns the exact maximal deviation between the
// weighted summary CDF and the empirical CDF of the given stream over all
// prefix ranges [min, t] — the eps-approximation error of Definition 1.1
// restricted to prefixes, with the summary treated as a weighted sample.
func PrefixDiscrepancy(stream []int64, summary []WeightedValue) float64 {
	if len(stream) == 0 {
		return 0
	}
	if len(summary) == 0 {
		return 1
	}
	xs := append([]int64(nil), stream...)
	slices.Sort(xs)
	totalW := int64(0)
	for _, wv := range summary {
		totalW += wv.Weight
	}
	nx := float64(len(xs))
	nw := float64(totalW)
	var i, j int
	var wAcc int64
	worst := 0.0
	for i < len(xs) || j < len(summary) {
		var t int64
		switch {
		case i >= len(xs):
			t = summary[j].Value
		case j >= len(summary):
			t = xs[i]
		case xs[i] <= summary[j].Value:
			t = xs[i]
		default:
			t = summary[j].Value
		}
		for i < len(xs) && xs[i] <= t {
			i++
		}
		for j < len(summary) && summary[j].Value <= t {
			wAcc += summary[j].Weight
			j++
		}
		if d := math.Abs(float64(i)/nx - float64(wAcc)/nw); d > worst {
			worst = d
		}
	}
	return worst
}
