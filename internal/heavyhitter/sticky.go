package heavyhitter

import (
	"math"

	"robustsample/internal/rng"
)

// StickySampling is the randomized frequent-elements algorithm of Manku and
// Motwani: elements enter the counter table by sampling at a rate that
// halves as the stream grows, and existing counters are probabilistically
// trimmed at each rate change. In the static setting it guarantees no false
// negatives at threshold alpha with probability 1-delta and counts that
// undercount by at most eps*n.
//
// It is included as a contrast point: like the paper's samplers it is
// randomized, but unlike them its analysis assumes a non-adaptive stream —
// an adversary watching the counter table could time its insertions around
// the sampling-rate boundaries. The deterministic baselines (MisraGries,
// SpaceSaving) and the robust sample (SampleHH) both carry adversarial
// guarantees; StickySampling does not.
type StickySampling struct {
	// Alpha, Eps, Delta are the reporting threshold, error and failure
	// probability of the static guarantee.
	Alpha, Eps, Delta float64

	counts   map[int64]int
	rng      *rng.RNG
	n        int
	rate     float64 // current sampling probability (1, 1/2, 1/4, ...)
	boundary int     // stream length at which the rate next halves
	window   int     // 2t, the width of each rate regime
}

// NewStickySampling returns a sticky-sampling summary. It reports
// ErrBadThreshold or ErrNilRNG on invalid parameters.
func NewStickySampling(alpha, eps, delta float64, r *rng.RNG) (*StickySampling, error) {
	if alpha <= 0 || alpha > 1 || eps <= 0 || eps >= alpha || delta <= 0 || delta >= 1 {
		return nil, ErrBadThreshold
	}
	if r == nil {
		return nil, ErrNilRNG
	}
	t := int(math.Ceil(1 / eps * math.Log(1/(alpha*delta))))
	if t < 1 {
		t = 1
	}
	return &StickySampling{
		Alpha:    alpha,
		Eps:      eps,
		Delta:    delta,
		counts:   make(map[int64]int),
		rng:      r,
		rate:     1,
		window:   2 * t,
		boundary: 2 * t,
	}, nil
}

// Name implements Summary.
func (ss *StickySampling) Name() string { return "sticky-sampling" }

// Insert implements Summary.
func (ss *StickySampling) Insert(x int64) {
	ss.n++
	if ss.n > ss.boundary {
		// Halve the rate and trim counters: for each counter, toss an
		// unbiased coin until heads, decrementing per tails; drop zeros.
		ss.rate /= 2
		ss.boundary += ss.window
		for k, c := range ss.counts {
			for c > 0 && ss.rng.Bernoulli(0.5) {
				c--
			}
			if c == 0 {
				delete(ss.counts, k)
			} else {
				ss.counts[k] = c
			}
		}
	}
	if _, ok := ss.counts[x]; ok {
		ss.counts[x]++
		return
	}
	if ss.rng.Bernoulli(ss.rate) {
		ss.counts[x] = 1
	}
}

// Report implements Summary: output counters with f >= (alpha - eps) n.
func (ss *StickySampling) Report(alpha float64) []int64 {
	if ss.n == 0 {
		return nil
	}
	cut := (alpha - ss.Eps) * float64(ss.n)
	var out []int64
	for x, c := range ss.counts {
		if float64(c) >= cut {
			out = append(out, x)
		}
	}
	sortInt64(out)
	return out
}

// EstimateDensity implements Summary (an undercount in expectation).
func (ss *StickySampling) EstimateDensity(x int64) float64 {
	if ss.n == 0 {
		return 0
	}
	return float64(ss.counts[x]) / float64(ss.n)
}

// Count implements Summary.
func (ss *StickySampling) Count() int { return ss.n }

// Size implements Summary.
func (ss *StickySampling) Size() int { return len(ss.counts) }
