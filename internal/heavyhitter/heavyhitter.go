// Package heavyhitter implements the heavy-hitters application of
// Corollary 1.6 and the classical deterministic baselines.
//
// Problem (paper, Section 1.2): given threshold alpha and error eps, output
// a list containing every element with stream density >= alpha and no
// element with density <= alpha - eps.
//
// The paper's robust algorithm: maintain an (eps/3)-approximation S of the
// stream w.r.t. the singleton set system (via robust Bernoulli/reservoir
// sampling) and report every x in S with d_x(S) >= alpha - eps/3. The
// deterministic baselines — Misra-Gries and SpaceSaving — are adversarially
// robust for free and serve as the comparison points of Section 1.1.
package heavyhitter

import (
	"errors"
	"slices"

	"robustsample/internal/rng"
)

// Sentinel errors for constructor parameter validation. They are surfaced
// (re-exported) at the public boundary by robustsample/topk; internal
// invariant violations still panic.
var (
	// ErrBadMemory reports a counter/sample memory below 1.
	ErrBadMemory = errors.New("heavyhitter: memory must be >= 1")
	// ErrBadEps reports an error parameter outside (0, 1).
	ErrBadEps = errors.New("heavyhitter: eps must be in (0, 1)")
	// ErrNilRNG reports a missing random source.
	ErrNilRNG = errors.New("heavyhitter: RNG must be non-nil")
	// ErrBadThreshold reports inconsistent sticky-sampling parameters.
	ErrBadThreshold = errors.New("heavyhitter: need 0 < eps < alpha <= 1 and 0 < delta < 1")
)

// Summary is a streaming heavy-hitters algorithm.
type Summary interface {
	// Name identifies the algorithm in tables.
	Name() string
	// Insert folds in one stream element.
	Insert(x int64)
	// Report returns the elements the algorithm declares heavy at
	// threshold alpha, in ascending order.
	Report(alpha float64) []int64
	// EstimateDensity returns the algorithm's estimate of d_x(stream).
	EstimateDensity(x int64) float64
	// Count returns the number of inserted elements.
	Count() int
	// Size returns the number of stored counters/values.
	Size() int
}

// SampleHH is the paper's sample-based heavy hitter summary (Corollary
// 1.6): a reservoir sample queried at threshold alpha - eps/3.
type SampleHH struct {
	// Eps is the error parameter; reporting uses alpha - Eps/3.
	Eps float64

	k      int
	items  []int64
	rounds int
	rng    *rng.RNG
}

// NewSampleHH returns a reservoir-backed heavy-hitters summary with memory
// k; pass k from core.HeavyHitterSize for adversarial robustness. It
// reports ErrBadMemory, ErrBadEps or ErrNilRNG on invalid parameters.
func NewSampleHH(k int, eps float64, r *rng.RNG) (*SampleHH, error) {
	if k < 1 {
		return nil, ErrBadMemory
	}
	if eps <= 0 || eps >= 1 {
		return nil, ErrBadEps
	}
	if r == nil {
		return nil, ErrNilRNG
	}
	return &SampleHH{Eps: eps, k: k, rng: r}, nil
}

// Name implements Summary.
func (s *SampleHH) Name() string { return "sample" }

// Insert implements Summary (reservoir Algorithm R).
func (s *SampleHH) Insert(x int64) {
	s.rounds++
	if len(s.items) < s.k {
		s.items = append(s.items, x)
		return
	}
	if j := s.rng.Intn(s.rounds); j < s.k {
		s.items[j] = x
	}
}

// Report implements Summary per Corollary 1.6: output all x in S with
// d_x(S) >= alpha - eps/3.
func (s *SampleHH) Report(alpha float64) []int64 {
	if len(s.items) == 0 {
		return nil
	}
	counts := make(map[int64]int, len(s.items))
	for _, x := range s.items {
		counts[x]++
	}
	cut := alpha - s.Eps/3
	var out []int64
	for x, c := range counts {
		if float64(c)/float64(len(s.items)) >= cut {
			out = append(out, x)
		}
	}
	sortInt64(out)
	return out
}

// EstimateDensity implements Summary.
func (s *SampleHH) EstimateDensity(x int64) float64 {
	if len(s.items) == 0 {
		return 0
	}
	c := 0
	for _, v := range s.items {
		if v == x {
			c++
		}
	}
	return float64(c) / float64(len(s.items))
}

// Items returns the current sample contents without copying; callers must
// not mutate. This is the sampler state an adaptive adversary observes.
func (s *SampleHH) Items() []int64 { return s.items }

// Count implements Summary.
func (s *SampleHH) Count() int { return s.rounds }

// Size implements Summary.
func (s *SampleHH) Size() int { return len(s.items) }

// MisraGries is the deterministic frequent-elements summary with m
// counters: every element with density > 1/(m+1) survives, and counts
// underestimate true counts by at most n/(m+1). Deterministic, hence
// adversarially robust.
type MisraGries struct {
	// M is the number of counters.
	M int

	counters map[int64]int
	n        int
}

// NewMisraGries returns a summary with m counters. It reports ErrBadMemory
// unless m >= 1.
func NewMisraGries(m int) (*MisraGries, error) {
	if m < 1 {
		return nil, ErrBadMemory
	}
	return &MisraGries{M: m, counters: make(map[int64]int, m+1)}, nil
}

// Name implements Summary.
func (mg *MisraGries) Name() string { return "misra-gries" }

// Insert implements Summary.
func (mg *MisraGries) Insert(x int64) {
	mg.n++
	if _, ok := mg.counters[x]; ok {
		mg.counters[x]++
		return
	}
	if len(mg.counters) < mg.M {
		mg.counters[x] = 1
		return
	}
	// Decrement all; drop zeros.
	for k := range mg.counters {
		mg.counters[k]--
		if mg.counters[k] == 0 {
			delete(mg.counters, k)
		}
	}
}

// Report implements Summary. The MG estimate undercounts by at most
// n/(M+1), so reporting everything with estimate >= (alpha - 1/(M+1)) n
// guarantees no heavy element is missed; with M >= 3/eps this matches the
// (alpha, eps) contract.
func (mg *MisraGries) Report(alpha float64) []int64 {
	if mg.n == 0 {
		return nil
	}
	cut := (alpha - 1/float64(mg.M+1)) * float64(mg.n)
	var out []int64
	for x, c := range mg.counters {
		if float64(c) >= cut {
			out = append(out, x)
		}
	}
	sortInt64(out)
	return out
}

// EstimateDensity implements Summary (an underestimate by <= 1/(M+1)).
func (mg *MisraGries) EstimateDensity(x int64) float64 {
	if mg.n == 0 {
		return 0
	}
	return float64(mg.counters[x]) / float64(mg.n)
}

// Count implements Summary.
func (mg *MisraGries) Count() int { return mg.n }

// Size implements Summary.
func (mg *MisraGries) Size() int { return len(mg.counters) }

// SpaceSaving is the deterministic summary of Metwally et al. with m
// counters: counts overestimate by at most n/m. Deterministic, hence
// adversarially robust.
type SpaceSaving struct {
	// M is the number of counters.
	M int

	counts map[int64]int
	n      int
}

// NewSpaceSaving returns a summary with m counters. It reports ErrBadMemory
// unless m >= 1.
func NewSpaceSaving(m int) (*SpaceSaving, error) {
	if m < 1 {
		return nil, ErrBadMemory
	}
	return &SpaceSaving{M: m, counts: make(map[int64]int, m)}, nil
}

// Name implements Summary.
func (ss *SpaceSaving) Name() string { return "space-saving" }

// Insert implements Summary.
func (ss *SpaceSaving) Insert(x int64) {
	ss.n++
	if _, ok := ss.counts[x]; ok {
		ss.counts[x]++
		return
	}
	if len(ss.counts) < ss.M {
		ss.counts[x] = 1
		return
	}
	// Evict the minimum counter and inherit its count + 1.
	var minKey int64
	minVal := -1
	for k, v := range ss.counts {
		if minVal < 0 || v < minVal {
			minKey, minVal = k, v
		}
	}
	delete(ss.counts, minKey)
	ss.counts[x] = minVal + 1
}

// Report implements Summary. SpaceSaving overestimates by at most n/M, so
// reporting estimates >= alpha*n keeps every true heavy element (whose
// estimate is at least its true count) and, with M >= 1/eps, no element
// below (alpha-eps)n.
func (ss *SpaceSaving) Report(alpha float64) []int64 {
	if ss.n == 0 {
		return nil
	}
	cut := alpha * float64(ss.n)
	var out []int64
	for x, c := range ss.counts {
		if float64(c) >= cut {
			out = append(out, x)
		}
	}
	sortInt64(out)
	return out
}

// EstimateDensity implements Summary (an overestimate by <= 1/M).
func (ss *SpaceSaving) EstimateDensity(x int64) float64 {
	if ss.n == 0 {
		return 0
	}
	return float64(ss.counts[x]) / float64(ss.n)
}

// Count implements Summary.
func (ss *SpaceSaving) Count() int { return ss.n }

// Size implements Summary.
func (ss *SpaceSaving) Size() int { return len(ss.counts) }

// Evaluate scores a report against the true stream at threshold alpha and
// error eps: a violation is either a missed element with density >= alpha
// (false negative) or a reported element with density <= alpha - eps (false
// positive). Elements in the indifference band (alpha-eps, alpha) are
// neither required nor forbidden.
type Evaluation struct {
	FalsePositives int
	FalseNegatives int
	TrueHeavy      int
	Reported       int
}

// Correct reports whether the output satisfies the (alpha, eps) contract.
func (e Evaluation) Correct() bool {
	return e.FalsePositives == 0 && e.FalseNegatives == 0
}

// Evaluate computes the Evaluation of `reported` against `stream`.
func Evaluate(stream []int64, reported []int64, alpha, eps float64) Evaluation {
	counts := make(map[int64]int)
	for _, x := range stream {
		counts[x]++
	}
	n := float64(len(stream))
	repSet := make(map[int64]bool, len(reported))
	for _, x := range reported {
		repSet[x] = true
	}
	var ev Evaluation
	ev.Reported = len(reported)
	for x, c := range counts {
		density := float64(c) / n
		if density >= alpha {
			ev.TrueHeavy++
			if !repSet[x] {
				ev.FalseNegatives++
			}
		}
	}
	for x := range repSet {
		if float64(counts[x])/n <= alpha-eps {
			ev.FalsePositives++
		}
	}
	return ev
}

func sortInt64(a []int64) {
	slices.Sort(a)
}
