package heavyhitter

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
)

// must unwraps a constructor result whose parameters are valid by
// construction in these tests.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// zipfStream produces a skewed stream with known heavy elements.
func zipfStream(n int, r *rng.RNG) []int64 {
	z := rng.NewZipf(10000, 1.3)
	out := make([]int64, n)
	for i := range out {
		out[i] = z.Draw(r)
	}
	return out
}

func trueDensities(stream []int64) map[int64]float64 {
	counts := make(map[int64]int)
	for _, x := range stream {
		counts[x]++
	}
	out := make(map[int64]float64, len(counts))
	for x, c := range counts {
		out[x] = float64(c) / float64(len(stream))
	}
	return out
}

func feed(s Summary, stream []int64) {
	for _, x := range stream {
		s.Insert(x)
	}
}

func TestMisraGriesUndercountBound(t *testing.T) {
	r := rng.New(1)
	stream := zipfStream(50000, r)
	mg := must(NewMisraGries(99))
	feed(mg, stream)
	slack := 1.0 / float64(mg.M+1)
	for x, d := range trueDensities(stream) {
		est := mg.EstimateDensity(x)
		if est > d+1e-12 {
			t.Fatalf("MG overestimated %d: %v > %v", x, est, d)
		}
		if est < d-slack-1e-12 {
			t.Fatalf("MG underestimated %d beyond n/(M+1): %v < %v - %v", x, est, d, slack)
		}
	}
	if mg.Size() > mg.M {
		t.Fatalf("MG used %d counters, limit %d", mg.Size(), mg.M)
	}
}

func TestSpaceSavingOvercountBound(t *testing.T) {
	r := rng.New(2)
	stream := zipfStream(50000, r)
	ss := must(NewSpaceSaving(100))
	feed(ss, stream)
	slack := 1.0 / float64(ss.M)
	dens := trueDensities(stream)
	for x := range ss.counts {
		est := ss.EstimateDensity(x)
		d := dens[x]
		if est < d-1e-12 {
			t.Fatalf("SS underestimated tracked %d: %v < %v", x, est, d)
		}
		if est > d+slack+1e-12 {
			t.Fatalf("SS overestimated %d beyond n/M: %v > %v + %v", x, est, d, slack)
		}
	}
	if ss.Size() > ss.M {
		t.Fatalf("SS used %d counters, limit %d", ss.Size(), ss.M)
	}
}

func TestAllSummariesSatisfyContractOnStaticStream(t *testing.T) {
	const n = 50000
	alpha, eps := 0.05, 0.03
	r := rng.New(3)
	stream := zipfStream(n, r)
	m := int(math.Ceil(3/eps)) + 1
	summaries := []Summary{
		must(NewSampleHH(8000, eps, r.Split())),
		must(NewMisraGries(m)),
		must(NewSpaceSaving(m)),
	}
	for _, s := range summaries {
		feed(s, stream)
		ev := Evaluate(stream, s.Report(alpha), alpha, eps)
		if !ev.Correct() {
			t.Fatalf("%s violated contract: %+v", s.Name(), ev)
		}
		if ev.TrueHeavy == 0 {
			t.Fatal("degenerate test: no heavy elements")
		}
	}
}

func TestSampleHHReportsObviousHeavy(t *testing.T) {
	r := rng.New(4)
	s := must(NewSampleHH(1000, 0.1, r.Split()))
	const n = 20000
	stream := make([]int64, n)
	for i := range stream {
		if i%2 == 0 {
			stream[i] = 7 // density 0.5
		} else {
			stream[i] = 1 + r.Int63n(100000)
		}
	}
	feed(s, stream)
	rep := s.Report(0.3)
	found := false
	for _, x := range rep {
		if x == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("element with density 0.5 not reported: %v", rep)
	}
}

func TestSampleHHEmpty(t *testing.T) {
	r := rng.New(5)
	s := must(NewSampleHH(10, 0.1, r))
	if s.Report(0.5) != nil {
		t.Fatal("empty report should be nil")
	}
	if s.EstimateDensity(1) != 0 {
		t.Fatal("empty density should be 0")
	}
}

func TestSampleHHValidation(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{errOf(NewSampleHH(0, 0.1, rng.New(1))), ErrBadMemory},
		{errOf(NewSampleHH(5, 0, rng.New(1))), ErrBadEps},
		{errOf(NewSampleHH(5, 1, rng.New(1))), ErrBadEps},
		{errOf(NewSampleHH(5, 0.1, nil)), ErrNilRNG},
	}
	for i, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("case %d: err = %v, want %v", i, c.err, c.want)
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

func TestMGSSValidation(t *testing.T) {
	if err := errOf(NewMisraGries(0)); !errors.Is(err, ErrBadMemory) {
		t.Fatalf("NewMisraGries(0) err = %v, want ErrBadMemory", err)
	}
	if err := errOf(NewSpaceSaving(0)); !errors.Is(err, ErrBadMemory) {
		t.Fatalf("NewSpaceSaving(0) err = %v, want ErrBadMemory", err)
	}
}

func TestReportsSortedAndDeduped(t *testing.T) {
	r := rng.New(6)
	stream := zipfStream(20000, r)
	for _, s := range []Summary{
		must(NewSampleHH(2000, 0.05, r.Split())),
		must(NewMisraGries(200)),
		must(NewSpaceSaving(200)),
	} {
		feed(s, stream)
		rep := s.Report(0.02)
		for i := 1; i < len(rep); i++ {
			if rep[i] <= rep[i-1] {
				t.Fatalf("%s: report not sorted/deduped: %v", s.Name(), rep)
			}
		}
	}
}

func TestEvaluateSemantics(t *testing.T) {
	// stream: value 1 has density 0.5 (heavy), value 2 density 0.3
	// (band), value 3 density 0.2 (light) for alpha=0.4, eps=0.15.
	stream := []int64{1, 1, 1, 1, 1, 2, 2, 2, 3, 3}
	alpha, eps := 0.4, 0.15

	// Perfect report.
	ev := Evaluate(stream, []int64{1}, alpha, eps)
	if !ev.Correct() || ev.TrueHeavy != 1 {
		t.Fatalf("perfect report judged wrong: %+v", ev)
	}
	// Reporting the band element is allowed.
	ev = Evaluate(stream, []int64{1, 2}, alpha, eps)
	if !ev.Correct() {
		t.Fatalf("band element should be allowed: %+v", ev)
	}
	// Reporting the light element is a false positive.
	ev = Evaluate(stream, []int64{1, 3}, alpha, eps)
	if ev.FalsePositives != 1 || ev.Correct() {
		t.Fatalf("light element not flagged: %+v", ev)
	}
	// Missing the heavy element is a false negative.
	ev = Evaluate(stream, nil, alpha, eps)
	if ev.FalseNegatives != 1 || ev.Correct() {
		t.Fatalf("missed heavy not flagged: %+v", ev)
	}
}

func TestEvaluateBoundaryDensity(t *testing.T) {
	// Density exactly alpha counts as heavy; exactly alpha-eps counts as
	// forbidden.
	stream := []int64{1, 1, 2, 3} // d(1)=0.5, d(2)=0.25
	ev := Evaluate(stream, nil, 0.5, 0.25)
	if ev.FalseNegatives != 1 {
		t.Fatal("density == alpha must be required")
	}
	ev = Evaluate(stream, []int64{2}, 0.5, 0.25)
	if ev.FalsePositives != 1 {
		t.Fatal("density == alpha-eps must be forbidden")
	}
}

func TestMGCountersNeverNegativeProperty(t *testing.T) {
	r := rng.New(7)
	f := func(nRaw uint16, mRaw uint8) bool {
		n := int(nRaw%2000) + 1
		m := int(mRaw%20) + 1
		mg := must(NewMisraGries(m))
		for i := 0; i < n; i++ {
			mg.Insert(1 + r.Int63n(50))
		}
		for _, c := range mg.counters {
			if c <= 0 {
				return false
			}
		}
		return mg.Size() <= m && mg.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingTotalMass(t *testing.T) {
	// Sum of SS counters >= n is NOT generally true, but sum >= n is for
	// full counters... the classical invariant is sum(counts) == n when
	// the table never evicts, and sum >= n never holds after eviction;
	// instead check sum <= n + n (loose) and that the max counter is at
	// least n/M.
	r := rng.New(8)
	const n, m = 10000, 50
	ss := must(NewSpaceSaving(m))
	for i := 0; i < n; i++ {
		ss.Insert(1 + r.Int63n(500))
	}
	maxC := 0
	total := 0
	for _, c := range ss.counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if maxC < n/m/2 {
		t.Fatalf("max SS counter %d suspiciously small", maxC)
	}
	if total > 2*n {
		t.Fatalf("SS counters sum to %d > 2n", total)
	}
}

func BenchmarkMisraGriesInsert(b *testing.B) {
	mg := must(NewMisraGries(100))
	r := rng.New(1)
	z := rng.NewZipf(10000, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Insert(z.Draw(r))
	}
}

func BenchmarkSpaceSavingInsert(b *testing.B) {
	ss := must(NewSpaceSaving(100))
	r := rng.New(1)
	z := rng.NewZipf(10000, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Insert(z.Draw(r))
	}
}

func BenchmarkSampleHHInsert(b *testing.B) {
	r := rng.New(1)
	s := must(NewSampleHH(1000, 0.1, r.Split()))
	z := rng.NewZipf(10000, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(z.Draw(r))
	}
}

func TestStickySamplingNoFalseNegativesStatic(t *testing.T) {
	// Static guarantee: every true heavy hitter is reported with
	// probability >= 1-delta. Run repeated trials and check the FN rate.
	const trials = 30
	alpha, eps, delta := 0.1, 0.05, 0.05
	root := rng.New(30)
	fns := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		ss := must(NewStickySampling(alpha, eps, delta, r.Split()))
		stream := zipfStream(30000, r)
		feed(ss, stream)
		ev := Evaluate(stream, ss.Report(alpha), alpha, eps)
		if ev.TrueHeavy == 0 {
			t.Fatal("degenerate workload")
		}
		if ev.FalseNegatives > 0 {
			fns++
		}
	}
	if rate := float64(fns) / trials; rate > delta+0.15 {
		t.Fatalf("false-negative trial rate %v, want <= ~delta", rate)
	}
}

func TestStickySamplingUndercounts(t *testing.T) {
	r := rng.New(31)
	ss := must(NewStickySampling(0.1, 0.05, 0.1, r.Split()))
	stream := zipfStream(30000, r)
	feed(ss, stream)
	for x, d := range trueDensities(stream) {
		if est := ss.EstimateDensity(x); est > d+1e-12 {
			t.Fatalf("sticky sampling overcounted %d: %v > %v", x, est, d)
		}
	}
}

func TestStickySamplingSpaceSublinear(t *testing.T) {
	r := rng.New(32)
	ss := must(NewStickySampling(0.05, 0.02, 0.1, r.Split()))
	const n = 100000
	for i := 0; i < n; i++ {
		ss.Insert(1 + r.Int63n(1<<20))
	}
	// Expected space is ~ (2/eps) log(1/(alpha*delta)), far below n.
	if ss.Size() > n/20 {
		t.Fatalf("sticky sampling stored %d counters for n=%d", ss.Size(), n)
	}
	if ss.Count() != n {
		t.Fatal("count wrong")
	}
}

func TestStickySamplingValidation(t *testing.T) {
	r := rng.New(33)
	cases := []struct {
		err  error
		want error
	}{
		{errOf(NewStickySampling(0, 0.1, 0.1, r)), ErrBadThreshold},
		{errOf(NewStickySampling(0.2, 0.3, 0.1, r)), ErrBadThreshold}, // eps >= alpha
		{errOf(NewStickySampling(0.2, 0.1, 0, r)), ErrBadThreshold},
		{errOf(NewStickySampling(0.2, 0.1, 0.1, nil)), ErrNilRNG},
	}
	for i, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("case %d: err = %v, want %v", i, c.err, c.want)
		}
	}
}

func TestStickySamplingEmpty(t *testing.T) {
	r := rng.New(34)
	ss := must(NewStickySampling(0.1, 0.05, 0.1, r))
	if ss.Report(0.1) != nil || ss.EstimateDensity(5) != 0 {
		t.Fatal("empty summary should report nothing")
	}
	if ss.Name() != "sticky-sampling" {
		t.Fatal("name")
	}
}
