package slab

import (
	"errors"
	"testing"
)

func TestAllocFreeReuse(t *testing.T) {
	a, err := New([]Class{{ItemCap: 4, WordCap: 2}}, Config{SlotsPerChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("distinct allocations share a ref")
	}
	if !r1.Valid() || NilRef.Valid() {
		t.Fatal("validity misreported")
	}
	copy(a.Items(r1), []int64{1, 2, 3, 4})
	a.Words(r1)[1] = 99
	if got := a.Items(r2); got[0] != 0 {
		t.Fatal("fresh slot not zeroed")
	}
	a.Free(r1)
	if s := a.Stats(); s.Live != 1 || s.Free != 1 {
		t.Fatalf("stats after free: %+v", s)
	}
	r3, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("free list not reused: got %v want %v", r3, r1)
	}
	for _, v := range a.Items(r3) {
		if v != 0 {
			t.Fatal("reused slot items not zeroed")
		}
	}
	for _, v := range a.Words(r3) {
		if v != 0 {
			t.Fatal("reused slot words not zeroed")
		}
	}
}

// TestChunkStability pins the property the farm's attach/detach views rely
// on: storage handed out for a slot stays at the same address while the
// arena grows by further chunks.
func TestChunkStability(t *testing.T) {
	a, err := New([]Class{{ItemCap: 2, WordCap: 1}}, Config{SlotsPerChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	items := a.Items(first)
	items[0] = 42
	for i := 0; i < 100; i++ {
		if _, err := a.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	if &items[0] != &a.Items(first)[0] || a.Items(first)[0] != 42 {
		t.Fatal("slot storage moved while arena grew")
	}
}

func TestMaxBytes(t *testing.T) {
	// One chunk of 2 slots * (8 items + 2 words) * 8 bytes = 160 bytes.
	a, err := New([]Class{{ItemCap: 8, WordCap: 2}}, Config{SlotsPerChunk: 2, MaxBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("third slot needs a 160-byte chunk over the 200-byte bound: got %v", err)
	}
	// Freeing makes room without growing.
	st := a.Stats()
	r, err := a.Alloc(0)
	if err == nil {
		t.Fatalf("unexpected headroom: %+v -> %v", st, r)
	}
}

func TestBadClass(t *testing.T) {
	if _, err := New(nil, Config{}); !errors.Is(err, ErrBadClass) {
		t.Fatalf("empty class list: %v", err)
	}
	if _, err := New([]Class{{ItemCap: 1, WordCap: 0}}, Config{}); !errors.Is(err, ErrBadClass) {
		t.Fatalf("zero word cap: %v", err)
	}
	a, err := New([]Class{{ItemCap: 1, WordCap: 1}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(7); !errors.Is(err, ErrBadClass) {
		t.Fatalf("out-of-range class: %v", err)
	}
}

func TestSliceCapsPinned(t *testing.T) {
	a, err := New([]Class{{ItemCap: 3, WordCap: 2}}, Config{SlotsPerChunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := a.Alloc(0)
	r2, _ := a.Alloc(0)
	it := a.Items(r1)
	if cap(it) != 3 || len(it) != 3 {
		t.Fatalf("items len/cap = %d/%d, want 3/3", len(it), cap(it))
	}
	// Appending past the pinned capacity must reallocate, never bleed into
	// the neighbor slot.
	grown := append(it, 7, 8)
	_ = grown
	if a.Items(r2)[0] != 0 {
		t.Fatal("append overflow corrupted the neighboring slot")
	}
	if w := a.Words(r2); len(w) != 2 || cap(w) != 2 {
		t.Fatalf("words len/cap = %d/%d, want 2/2", len(w), cap(w))
	}
}

func TestMultiClass(t *testing.T) {
	a, err := New([]Class{{ItemCap: 2, WordCap: 1}, {ItemCap: 16, WordCap: 3}}, Config{SlotsPerChunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := a.Alloc(0)
	r1, _ := a.Alloc(1)
	if a.ClassOf(r0) != 0 || a.ClassOf(r1) != 1 {
		t.Fatal("ClassOf mismatch")
	}
	if a.ItemCap(0) != 2 || a.ItemCap(1) != 16 || a.Classes() != 2 {
		t.Fatal("class geometry misreported")
	}
	if len(a.Items(r1)) != 16 || len(a.Words(r1)) != 3 {
		t.Fatal("class-1 slot has wrong geometry")
	}
}
