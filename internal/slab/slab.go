// Package slab is the flat-state allocator behind the multi-tenant sketch
// farm: size-classed arenas of fixed-capacity slots, each slot a run of
// int64 items plus a run of uint64 counter words, with free-list reuse and
// a hard byte bound. A slot holds one tenant sketch's complete mutable
// state (sample items, counters, RNG words) in pointer-free storage, so a
// million tenants cost a handful of large allocations instead of a million
// heap objects — no per-sketch pointer graph for the GC to trace, and hot
// tenants touched together sit densely in memory.
//
// Slots are addressed by packed Ref handles. Storage is carved out of
// fixed-size chunks that are never reallocated, so the slices returned by
// Items and Words stay valid until the slot is freed: a sampler can be
// attached as a view over a slot (sampler.AttachFlat) while other slots
// are allocated concurrently.
//
// The arena is not goroutine-safe; the farm shards it behind per-shard
// locks.
package slab

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrapped errors carry context; test with errors.Is.
var (
	// ErrArenaFull reports an allocation that would exceed MaxBytes.
	ErrArenaFull = errors.New("slab: arena memory bound exceeded")
	// ErrBadClass reports an out-of-range size-class index or an invalid
	// class configuration.
	ErrBadClass = errors.New("slab: invalid size class")
)

// Class describes one slot size class: every slot in the class holds
// ItemCap int64 items and WordCap uint64 counter words.
type Class struct {
	ItemCap int
	WordCap int
}

// Config tunes an Arena.
type Config struct {
	// MaxBytes bounds the total slot storage the arena may reserve, in
	// bytes; 0 means unbounded. The bound covers the chunk payloads (the
	// dominant term), not the per-chunk slice headers.
	MaxBytes int64
	// SlotsPerChunk is the chunk granularity; 0 selects the default
	// (1024). Larger chunks amortize growth better, smaller chunks track
	// MaxBytes more tightly.
	SlotsPerChunk int
}

const defaultSlotsPerChunk = 1024

// Ref is a packed slot handle: size class in the top 16 bits (offset by
// one so the zero Ref stays invalid), slot index in the low 48.
type Ref uint64

// NilRef is the invalid handle.
const NilRef Ref = 0

const refIndexBits = 48

func packRef(class int, idx uint64) Ref {
	return Ref(uint64(class+1)<<refIndexBits | idx)
}

// Valid reports whether r refers to a slot.
func (r Ref) Valid() bool { return r != NilRef }

func (r Ref) class() int    { return int(r>>refIndexBits) - 1 }
func (r Ref) index() uint64 { return uint64(r) & (1<<refIndexBits - 1) }

// classArena is the per-class storage: parallel chunk lists for items and
// words, a bump pointer, and an intrusive free list threaded through
// words[0] of freed slots (head and links store index+1 so 0 means empty).
type classArena struct {
	itemCap int
	wordCap int
	items   [][]int64
	words   [][]uint64
	next    uint64 // slots ever allocated (bump pointer)
	free    uint64 // free-list head, index+1
	nfree   int
	live    int
}

// Arena allocates fixed-size slots from size-classed chunked storage.
type Arena struct {
	classes []classArena
	spc     int
	max     int64
	bytes   int64
}

// New builds an arena with the given size classes. Class indices passed to
// Alloc refer to positions in this slice. Every class needs ItemCap >= 0,
// WordCap >= 1 (the free list lives in the first word) and at least one of
// them positive.
func New(classes []Class, cfg Config) (*Arena, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadClass)
	}
	spc := cfg.SlotsPerChunk
	if spc <= 0 {
		spc = defaultSlotsPerChunk
	}
	a := &Arena{classes: make([]classArena, len(classes)), spc: spc, max: cfg.MaxBytes}
	for i, c := range classes {
		if c.ItemCap < 0 || c.WordCap < 1 {
			return nil, fmt.Errorf("%w: class %d (%d items, %d words)", ErrBadClass, i, c.ItemCap, c.WordCap)
		}
		a.classes[i] = classArena{itemCap: c.ItemCap, wordCap: c.WordCap}
	}
	return a, nil
}

// chunkBytes is the payload size of one chunk of class c.
func (a *Arena) chunkBytes(c *classArena) int64 {
	return int64(a.spc) * int64(c.itemCap*8+c.wordCap*8)
}

// Alloc reserves a zeroed slot in the given size class. It reuses a freed
// slot when one is available and otherwise bump-allocates, growing by one
// chunk when the class is exhausted; growth that would exceed MaxBytes
// fails with ErrArenaFull and leaves the arena unchanged.
func (a *Arena) Alloc(class int) (Ref, error) {
	if class < 0 || class >= len(a.classes) {
		return NilRef, fmt.Errorf("%w: class %d of %d", ErrBadClass, class, len(a.classes))
	}
	c := &a.classes[class]
	if c.free != 0 {
		idx := c.free - 1
		w := a.slotWords(c, idx)
		c.free = w[0]
		w[0] = 0
		c.nfree--
		c.live++
		return packRef(class, idx), nil
	}
	if c.next == uint64(len(c.items))*uint64(a.spc) {
		grow := a.chunkBytes(c)
		if a.max > 0 && a.bytes+grow > a.max {
			return NilRef, fmt.Errorf("%w: %d + %d bytes over the %d-byte bound", ErrArenaFull, a.bytes, grow, a.max)
		}
		c.items = append(c.items, make([]int64, a.spc*c.itemCap))
		c.words = append(c.words, make([]uint64, a.spc*c.wordCap))
		a.bytes += grow
	}
	idx := c.next
	c.next++
	c.live++
	return packRef(class, idx), nil
}

// Free returns a slot to its class free list, zeroing its storage so the
// next tenant starts from clean state. Freeing NilRef is a no-op.
func (a *Arena) Free(ref Ref) {
	if !ref.Valid() {
		return
	}
	c := &a.classes[ref.class()]
	idx := ref.index()
	items := a.slotItems(c, idx)
	for i := range items {
		items[i] = 0
	}
	w := a.slotWords(c, idx)
	for i := range w {
		w[i] = 0
	}
	w[0] = c.free
	c.free = idx + 1
	c.nfree++
	c.live--
}

func (a *Arena) slotItems(c *classArena, idx uint64) []int64 {
	chunk, slot := idx/uint64(a.spc), idx%uint64(a.spc)
	off := int(slot) * c.itemCap
	return c.items[chunk][off : off+c.itemCap : off+c.itemCap]
}

func (a *Arena) slotWords(c *classArena, idx uint64) []uint64 {
	chunk, slot := idx/uint64(a.spc), idx%uint64(a.spc)
	off := int(slot) * c.wordCap
	return c.words[chunk][off : off+c.wordCap : off+c.wordCap]
}

// Items returns the slot's item storage: length and capacity are exactly
// the class ItemCap, so appends past capacity spill to the heap instead of
// corrupting neighboring slots. The slice stays valid until Free.
func (a *Arena) Items(ref Ref) []int64 {
	return a.slotItems(&a.classes[ref.class()], ref.index())
}

// Words returns the slot's counter-word storage (length WordCap). The
// slice stays valid until Free.
func (a *Arena) Words(ref Ref) []uint64 {
	return a.slotWords(&a.classes[ref.class()], ref.index())
}

// ClassOf returns the size-class index ref was allocated from.
func (a *Arena) ClassOf(ref Ref) int { return ref.class() }

// ItemCap returns the item capacity of a size class.
func (a *Arena) ItemCap(class int) int { return a.classes[class].itemCap }

// Classes returns the number of size classes.
func (a *Arena) Classes() int { return len(a.classes) }

// Stats is an allocation snapshot.
type Stats struct {
	// Live is the number of allocated slots.
	Live int
	// Free is the number of slots sitting on free lists.
	Free int
	// Bytes is the slot storage currently reserved from the Go heap.
	Bytes int64
}

// Stats reports current allocation counts.
func (a *Arena) Stats() Stats {
	s := Stats{Bytes: a.bytes}
	for i := range a.classes {
		s.Live += a.classes[i].live
		s.Free += a.classes[i].nfree
	}
	return s
}
