package main

import (
	"os"
	"path/filepath"
	"testing"

	"robustsample/internal/bench"
)

func entry(name string, ns int64, producers int) bench.BenchResult {
	return bench.BenchResult{
		Name:    name,
		NsPerOp: ns,
		Params: bench.BenchParams{
			Seed: 1, Trials: 10, Scale: 1, Producers: producers,
		},
	}
}

func TestDiffGatesRegressions(t *testing.T) {
	gated := map[string]bool{"ConcurrentIngest": true, "E5": true}
	base := []bench.BenchResult{
		entry("E5", 1000, 0),
		entry("ConcurrentIngest", 500, 1),
		entry("ConcurrentIngest", 100, 4),
		entry("E7", 99, 0), // not gated
	}

	cases := []struct {
		name     string
		fresh    []bench.BenchResult
		wantFail bool
	}{
		{"within tolerance", []bench.BenchResult{entry("E5", 1150, 0), entry("ConcurrentIngest", 550, 1)}, false},
		{"improvement", []bench.BenchResult{entry("E5", 200, 0)}, false},
		{"regression on E5", []bench.BenchResult{entry("E5", 1300, 0)}, true},
		{"regression on one curve point", []bench.BenchResult{entry("ConcurrentIngest", 510, 1), entry("ConcurrentIngest", 130, 4)}, true},
		{"ungated regressions pass", []bench.BenchResult{entry("E7", 9900, 0)}, false},
		{"new point has no baseline", []bench.BenchResult{entry("ConcurrentIngest", 77, 32)}, false},
		{"empty fresh run", nil, false},
	}
	for _, tc := range cases {
		_, regressed := diff(tc.fresh, base, gated, 0.20)
		if regressed != tc.wantFail {
			t.Errorf("%s: regressed = %v, want %v", tc.name, regressed, tc.wantFail)
		}
	}
}

func TestDiffRequiresMatchingParams(t *testing.T) {
	gated := map[string]bool{"E5": true}
	base := []bench.BenchResult{entry("E5", 100, 0)}
	fresh := entry("E5", 1000, 0)
	fresh.Params.Scale = 0.2 // different configuration: incomparable
	if _, regressed := diff([]bench.BenchResult{fresh}, base, gated, 0.20); regressed {
		t.Fatal("entries with different params must not be compared")
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR4.json", "BENCH_PR10.json", "BENCH_PR6.json", "BENCH.md", "BENCH_PRx.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("[]"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_PR10.json"); got != want {
		t.Fatalf("latestBaseline = %q, want %q", got, want)
	}
	if _, err := latestBaseline(t.TempDir()); err == nil {
		t.Fatal("expected error for a directory without baselines")
	}
}
