// Command benchdiff is the CI bench regression gate: it compares a fresh
// `robustbench -json` measurement against the repository's committed perf
// trajectory (the latest BENCH_PR*.json) and fails when a named hot path
// regresses beyond the tolerance.
//
// Entries are matched by name AND measurement configuration (seed, trials,
// scale, workers, shard/chunk/producer counts, modeled latency, element
// count): two runs are comparable only when they measured the same thing.
// Gated entries with no comparable baseline — a new benchmark, a new
// producer point, a re-parameterized experiment — pass with a note; the
// gate exists to catch regressions on paths the trajectory already tracks,
// not to freeze the benchmark matrix.
//
// Usage:
//
//	robustbench -exp E5,E19 -json new.json
//	benchdiff -new new.json                  # vs latest BENCH_PR*.json
//	benchdiff -new new.json -baseline BENCH_PR6.json -tolerance 0.3
//	benchdiff -new new.json -paths ConcurrentIngest,E5
//	benchdiff -new new.json -hotpaths internal/lint/hotpathalloc/golden.txt
//
// Exit status: 0 when every gated comparison is within tolerance, 1 on
// regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"

	"robustsample/internal/bench"
	"robustsample/internal/lint/hotpathalloc"
)

func main() {
	var (
		newPath   = flag.String("new", "", "fresh robustbench -json output to check (\"-\" = stdin)")
		baseline  = flag.String("baseline", "", "baseline BENCH_*.json (empty = latest BENCH_PR*.json in -dir)")
		dir       = flag.String("dir", ".", "directory searched for BENCH_PR*.json baselines")
		paths     = flag.String("paths", "ConcurrentIngest,E5", "comma-separated gated entry names")
		tolerance = flag.Float64("tolerance", 0.20, "allowed ns/op regression fraction on gated paths")
		hotpaths  = flag.String("hotpaths", "", "hot-path golden list (internal/lint/hotpathalloc/golden.txt) to cross-check bench= claims against the baseline names; warn-only")
	)
	flag.Parse()
	if *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	fresh, err := loadResults(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	basePath := *baseline
	if basePath == "" {
		basePath, err = latestBaseline(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	base, err := loadResults(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	gated := make(map[string]bool)
	for _, p := range strings.Split(*paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			gated[p] = true
		}
	}
	report, regressed := diff(fresh, base, gated, *tolerance)
	fmt.Printf("benchdiff: baseline %s\n", basePath)
	for _, line := range report {
		fmt.Println(line)
	}
	if *hotpaths != "" {
		for _, w := range crossCheckHotpaths(*hotpaths, base) {
			fmt.Fprintf(os.Stderr, "benchdiff: warning: %s\n", w)
		}
	}
	if regressed {
		fmt.Println("benchdiff: FAIL — gated hot path regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

func loadResults(path string) ([]bench.BenchResult, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var results []bench.BenchResult
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return results, nil
}

var baselineRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline returns the BENCH_PR*.json in dir with the highest PR
// number — the most recent committed point of the perf trajectory.
func latestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := baselineRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR*.json baseline in %s", dir)
	}
	return best, nil
}

// key identifies a measured configuration: entries compare only when the
// name and every configuration parameter agree. The roofline fields
// (bytes_per_elem, copy_gbps) are measurements, not configuration, and are
// deliberately excluded.
func key(r bench.BenchResult) string {
	p := r.Params
	return fmt.Sprintf("%s|seed=%d|trials=%d|scale=%g|workers=%d|shards=%d|chunk=%d|producers=%d|latency=%d|n=%d|ckpt=%d",
		r.Name, p.Seed, p.Trials, p.Scale, p.Workers, p.Shards, p.Chunk, p.Producers, p.LatencyNs, p.N, p.Checkpoint)
}

// label renders a short human identifier for a result.
func label(r bench.BenchResult) string {
	if r.Params.Producers > 0 {
		return fmt.Sprintf("%s/P=%d", r.Name, r.Params.Producers)
	}
	return r.Name
}

// crossCheckHotpaths compares the hot-path golden list's bench= claims
// against the baseline's entry names, both directions: a claimed name with
// no baseline entry is stale (the benchmark was renamed or dropped while
// the annotation kept claiming it), and a baseline name claimed by no
// golden entry means a tracked perf curve has no registered hot path
// backing it. Both are drift between the annotation layer and the perf
// trajectory, reported as warnings only — naming hygiene must not block a
// perf gate.
func crossCheckHotpaths(path string, base []bench.BenchResult) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("hotpaths: %v", err)}
	}
	golden := hotpathalloc.ParseGolden(string(data))
	baseNames := make(map[string]bool, len(base))
	for _, r := range base {
		baseNames[r.Name] = true
	}
	claimed := make(map[string][]string) // bench name -> claiming funcs
	for fn, benches := range golden {
		for _, b := range benches {
			claimed[b] = append(claimed[b], fn)
		}
	}
	var warns []string
	for _, b := range sortedKeys(claimed) {
		if !baseNames[b] {
			fns := claimed[b]
			slices.Sort(fns)
			warns = append(warns, fmt.Sprintf("golden list claims bench %q (via %s) but the baseline has no entry with that name — stale claim?",
				b, strings.Join(fns, ", ")))
		}
	}
	for _, b := range sortedKeys(baseNames) {
		if len(claimed[b]) == 0 {
			warns = append(warns, fmt.Sprintf("baseline entry %q is claimed by no hot-path golden entry — register its hot path with a bench= suffix in %s",
				b, path))
		}
	}
	return warns
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// diff compares fresh gated entries against the baseline, returning the
// report lines and whether any gated path regressed beyond tol.
func diff(fresh, base []bench.BenchResult, gated map[string]bool, tol float64) ([]string, bool) {
	byKey := make(map[string]bench.BenchResult, len(base))
	for _, r := range base {
		byKey[key(r)] = r
	}
	var report []string
	regressed := false
	for _, r := range fresh {
		if !gated[r.Name] {
			continue
		}
		old, ok := byKey[key(r)]
		if !ok {
			report = append(report, fmt.Sprintf("  %-24s %12d ns/op  (no comparable baseline — skipped)", label(r), r.NsPerOp))
			continue
		}
		ratio := float64(r.NsPerOp) / float64(old.NsPerOp)
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSION"
			regressed = true
		}
		report = append(report, fmt.Sprintf("  %-24s %12d -> %12d ns/op  (%+.1f%%)  %s",
			label(r), old.NsPerOp, r.NsPerOp, (ratio-1)*100, verdict))
	}
	if len(report) == 0 {
		report = append(report, "  (no gated entries in the fresh measurement)")
	}
	return report, regressed
}
