// Command quantiles reads integers (one per line) from stdin and prints
// quantile estimates from three sketches side by side: the paper's robust
// reservoir sample (Corollary 1.5), the deterministic Greenwald-Khanna
// summary, and the randomized KLL sketch — together with exact values and
// rank errors.
//
// Usage:
//
//	seq 1 100000 | shuf | quantiles -eps 0.02 -delta 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"math"

	"robustsample/internal/core"
	"robustsample/internal/quantile"
	"robustsample/internal/rng"
)

func main() {
	var (
		eps      = flag.Float64("eps", 0.02, "rank error target")
		delta    = flag.Float64("delta", 0.05, "failure probability for the robust sample")
		universe = flag.Int64("universe", 1<<30, "assumed universe size |U| for Corollary 1.5 sizing")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	// Size the reservoir lazily once n is known would be ideal; the
	// paper's formulas need n only for Bernoulli. Reservoir size is
	// n-independent, so we can build it immediately.
	k := core.ReservoirSize(core.Params{Eps: *eps, Delta: *delta, N: 1 << 62}, logOf(*universe))
	sketches := []quantile.Sketch{
		quantile.NewReservoirSketch(k, r.Split()),
		quantile.NewGK(*eps),
		quantile.NewKLL(max(4, 10*int(1.0 / *eps)), r.Split()),
	}
	exact := quantile.NewExact()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantiles: skipping %q: %v\n", line, err)
			continue
		}
		exact.Insert(v)
		for _, s := range sketches {
			s.Insert(v)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "quantiles: read error: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "quantiles: no input")
		os.Exit(1)
	}

	fmt.Printf("n=%d  robust reservoir k=%d (Cor 1.5, |U|=%d)\n\n", n, k, *universe)
	fmt.Printf("%-10s %12s", "quantile", "exact")
	for _, s := range sketches {
		fmt.Printf(" %18s", s.Name())
	}
	fmt.Println()
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		ev := exact.Quantile(q)
		fmt.Printf("%-10.2f %12d", q, ev)
		for _, s := range sketches {
			got := s.Quantile(q)
			// Displacement of the returned value's true rank from q*n.
			rankErr := (exact.Rank(got) - q*float64(n)) / float64(n)
			fmt.Printf(" %12d(%+.3f)", got, rankErr)
		}
		fmt.Println()
	}
	fmt.Printf("\nspace: exact=%d", exact.Size())
	for _, s := range sketches {
		fmt.Printf("  %s=%d", s.Name(), s.Size())
	}
	fmt.Println()
}

func logOf(u int64) float64 {
	if u < 2 {
		return 0
	}
	return math.Log(float64(u))
}
