// Command quantiles reads integers (one per line) from stdin and prints
// quantile estimates from three sketches side by side: the paper's robust
// quantile sketch through the public robustsample/quantile surface
// (Corollary 1.5), the deterministic Greenwald-Khanna summary, and the
// randomized KLL sketch — together with exact values and rank errors.
//
// Usage:
//
//	seq 1 100000 | shuf | quantiles -eps 0.02 -delta 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	iq "robustsample/internal/quantile"
	"robustsample/internal/rng"
	"robustsample/quantile"
	"robustsample/sketch"
)

func main() {
	var (
		eps      = flag.Float64("eps", 0.02, "rank error target")
		delta    = flag.Float64("delta", 0.05, "failure probability for the robust sample")
		universe = flag.Int64("universe", 1<<30, "assumed universe size |U| for Corollary 1.5 sizing")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	u, err := sketch.NewInt64Range(1, *universe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantiles: %v\n", err)
		os.Exit(2)
	}
	// Reservoir size is n-independent in the paper's formula, so an
	// upper-bound stream length sizes the sketch before reading input.
	robust, err := quantile.New(u, *eps, *delta, 1<<62, sketch.WithSeed(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantiles: %v\n", err)
		os.Exit(2)
	}

	r := rng.New(*seed ^ 0x9e3779b97f4a7c15)
	baselines := []iq.Sketch{
		iq.NewGK(*eps),
		iq.NewKLL(max(4, 10*int(1.0 / *eps)), r.Split()),
	}
	exact := iq.NewExact()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantiles: skipping %q: %v\n", line, err)
			continue
		}
		if _, err := robust.Offer(v); err != nil {
			fmt.Fprintf(os.Stderr, "quantiles: skipping %d: %v\n", v, err)
			continue
		}
		exact.Insert(v)
		for _, s := range baselines {
			s.Insert(v)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "quantiles: read error: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "quantiles: no input")
		os.Exit(1)
	}

	fmt.Printf("n=%d  robust reservoir k=%d (Cor 1.5, |U|=%d)\n\n", n, robust.K(), *universe)
	fmt.Printf("%-10s %12s %18s", "quantile", "exact", "robust-sample")
	for _, s := range baselines {
		fmt.Printf(" %18s", s.Name())
	}
	fmt.Println()
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		ev := exact.Quantile(q)
		fmt.Printf("%-10.2f %12d", q, ev)
		rv, err := robust.Quantile(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantiles: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf(" %12d(%+.3f)", rv, (exact.Rank(rv)-q*float64(n))/float64(n))
		for _, s := range baselines {
			got := s.Quantile(q)
			// Displacement of the returned value's true rank from q*n.
			rankErr := (exact.Rank(got) - q*float64(n)) / float64(n)
			fmt.Printf(" %12d(%+.3f)", got, rankErr)
		}
		fmt.Println()
	}
	fmt.Printf("\nspace: exact=%d  robust-sample=%d", exact.Size(), robust.Len())
	for _, s := range baselines {
		fmt.Printf("  %s=%d", s.Name(), s.Size())
	}
	fmt.Println()
}
