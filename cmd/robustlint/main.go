// Command robustlint runs the repo-specific analyzers from internal/lint
// over the module and fails if any contract is violated. It is the CI gate
// behind the invariants DESIGN.md states in prose: determinism-contract
// packages draw no out-of-tree randomness or wall-clock values (detsource),
// atomically accessed fields are never touched plainly (atomicmix), public
// packages fail through sentinel errors instead of panics (sentinelerr),
// //robust:hotpath functions stay zero-alloc and registered in the golden
// list (hotpathalloc), and snapshot codecs keep unique frame kinds, paired
// Snapshot/Restore methods, universe validation on restore, and pinned
// codec versions (snapshotframe).
//
// Usage:
//
//	robustlint [-list] [packages...]
//
// Packages default to ./... resolved against the current directory. Exit
// status is 1 when any analyzer reports a finding, 2 on a driver failure
// (unparseable source, type errors). Findings print as
//
//	path/file.go:line:col: [analyzer] message
//
// Suppressions are //robust: directives (see internal/lint); robustlint
// also validates the directive grammar itself, so a misspelled opt-out is a
// finding rather than a silent no-op.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"robustsample/internal/lint"
	"robustsample/internal/lint/atomicmix"
	"robustsample/internal/lint/detsource"
	"robustsample/internal/lint/hotpathalloc"
	"robustsample/internal/lint/loader"
	"robustsample/internal/lint/sentinelerr"
	"robustsample/internal/lint/snapshotframe"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*lint.Analyzer{
	detsource.Analyzer,
	atomicmix.Analyzer,
	sentinelerr.Analyzer,
	hotpathalloc.Analyzer,
	snapshotframe.Analyzer,
}

// directiveChecker validates the //robust: grammar as a pseudo-analyzer so
// its findings carry a name like the others.
var directiveChecker = &lint.Analyzer{
	Name: "directives",
	Doc:  "//robust: comments must use known tags, and suppressions must carry a reason",
	Run: func(p *lint.Pass) error {
		lint.CheckDirectives(p)
		return nil
	},
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: robustlint [-list] [packages...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range append([]*lint.Analyzer{directiveChecker}, analyzers...) {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "robustlint: %v\n", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range append([]*lint.Analyzer{directiveChecker}, analyzers...) {
			pass := &lint.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   func(d lint.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "robustlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
		}
	}

	// The directive checker runs once per package, but an external-test
	// variant shares source files with its base package's _test.go set only
	// when the files are in-package; duplicates cannot arise from that split.
	// Still, de-duplicate defensively on position+message so one finding is
	// one line.
	seen := make(map[string]bool, len(diags))
	var out []lint.Diagnostic
	for _, d := range diags {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	for _, d := range out {
		fmt.Println(d.String())
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "robustlint: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}
