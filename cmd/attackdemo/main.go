// Command attackdemo demonstrates the Figure-3 bisection attack of
// Section 5 end to end: it runs the attack against Bernoulli or reservoir
// sampling over an unbounded ordered universe, prints the resulting sample
// versus the stream, and reports the exact prefix-system approximation
// error alongside the universe size a bounded-integer simulation would have
// required.
//
// Usage:
//
//	attackdemo -sampler bernoulli -n 10000 -p 0.002
//	attackdemo -sampler reservoir -n 10000 -k 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"robustsample/internal/adversary"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

func main() {
	var (
		kind = flag.String("sampler", "bernoulli", "sampler under attack: bernoulli or reservoir")
		n    = flag.Int("n", 10000, "stream length")
		p    = flag.Float64("p", 0, "Bernoulli rate (default 2 ln n / n)")
		k    = flag.Int("k", 10, "reservoir memory size")
		seed = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	var res adversary.AttackResult
	var pPrime float64
	switch *kind {
	case "bernoulli":
		rate := *p
		if rate == 0 {
			rate = 2 * math.Log(float64(*n)) / float64(*n)
		}
		res = adversary.RunExactBisectionBernoulli(*n, rate, r)
		pPrime = math.Max(rate, math.Log(float64(*n))/float64(*n))
		fmt.Printf("attack: Figure 3 vs BernoulliSample(p=%.6f), n=%d\n", rate, *n)
	case "reservoir":
		res = adversary.RunExactBisectionReservoir(*n, *k, r)
		a := 2 * float64(*k) * math.Log(float64(*n))
		pPrime = a / (a + float64(*n))
		fmt.Printf("attack: Figure 3 vs ReservoirSample(k=%d), n=%d\n", *k, *n)
	default:
		fmt.Fprintf(os.Stderr, "attackdemo: unknown sampler %q\n", *kind)
		os.Exit(2)
	}

	sys := setsystem.NewPrefixes(int64(*n))
	d := sys.MaxDiscrepancy(res.Stream, res.Sample)

	fmt.Printf("sample size          : %d\n", len(res.Sample))
	fmt.Printf("total ever admitted  : %d (k' of Section 5)\n", res.TotalAdmitted)
	fmt.Printf("sampled-are-smallest : %v (Claim 5.2 invariant)\n", res.SampleIsPrefixOfAdmitted)
	fmt.Printf("prefix approx error  : %.4f (witness %v)\n", d.Err, d)
	fmt.Printf("theory               : error >= 1/2 with probability >= 1/2 (Theorem 1.3)\n")
	fmt.Printf("required ln|U|       : %.1f (vs ln(2^63) = %.1f for int64)\n",
		adversary.RequiredLogUniverse(*n, pPrime), 63*math.Ln2)

	// Show the displacement of the median, the introduction's framing.
	if len(res.Sample) > 0 {
		med := sampler.SortedCopy(res.Sample)[len(res.Sample)/2]
		fmt.Printf("sample median rank   : %d of %d (ideal %d)\n", med, *n, *n/2)
	}
}
