// Command apidump prints a stable, sorted dump of the module's public API
// surface: every exported constant, variable, type, function and method of
// the public packages, with documentation and function bodies stripped and
// unexported struct fields elided.
//
// CI diffs its output against api/public.txt, so any change to the public
// surface — intended or not — shows up in review as a golden-file diff.
// After an intentional API change, regenerate with:
//
//	go run ./cmd/apidump > api/public.txt
//
// The dump is produced from the AST alone (no type checking), so it is
// stable across Go releases.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// packages lists the public surface in print order: import path suffix and
// directory relative to the module root.
var packages = []struct{ path, dir string }{
	{"robustsample", "."},
	{"robustsample/sketch", "sketch"},
	{"robustsample/quantile", "quantile"},
	{"robustsample/topk", "topk"},
	{"robustsample/shard", "shard"},
	{"robustsample/switching", "switching"},
	{"robustsample/farm", "farm"},
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var out bytes.Buffer
	for _, p := range packages {
		if err := dumpPackage(&out, p.path, filepath.Join(root, p.dir)); err != nil {
			fmt.Fprintf(os.Stderr, "apidump: %s: %v\n", p.path, err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(out.Bytes())
}

type entry struct {
	key  string
	text string
}

func dumpPackage(out *bytes.Buffer, path, dir string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	var entries []entry
	for _, pkg := range pkgs {
		if pkg.Name == "main" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declEntries(fset, decl)...)
			}
		}
	}
	slices.SortFunc(entries, func(a, b entry) int { return strings.Compare(a.key, b.key) })
	fmt.Fprintf(out, "== %s\n", path)
	for _, e := range entries {
		fmt.Fprintln(out, e.text)
	}
	fmt.Fprintln(out)
	return nil
}

// declEntries renders one top-level declaration's exported parts.
func declEntries(fset *token.FileSet, decl ast.Decl) []entry {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		key := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) == 1 {
			base := receiverBase(d.Recv.List[0].Type)
			if base == "" || !ast.IsExported(base) {
				return nil
			}
			key = base + "." + d.Name.Name
		}
		d.Doc = nil
		d.Body = nil
		return []entry{{key, render(fset, d)}}
	case *ast.GenDecl:
		var entries []entry
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				elideUnexportedFields(s.Type)
				s.Doc, s.Comment = nil, nil
				g := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}
				entries = append(entries, entry{s.Name.Name, render(fset, g)})
			case *ast.ValueSpec:
				names := exportedNames(s.Names)
				if len(names) == 0 {
					continue
				}
				// Render the spec as declared (values of consts/vars are
				// part of the observable API for sentinels and enums).
				s.Doc, s.Comment = nil, nil
				g := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}
				entries = append(entries, entry{names[0], render(fset, g)})
			}
		}
		return entries
	}
	return nil
}

func exportedNames(idents []*ast.Ident) []string {
	var out []string
	for _, id := range idents {
		if id.IsExported() {
			out = append(out, id.Name)
		}
	}
	return out
}

// receiverBase returns the type name under any pointer/generic wrapping.
func receiverBase(t ast.Expr) string {
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// elideUnexportedFields removes unexported struct fields (implementation
// detail, not API) in place.
func elideUnexportedFields(t ast.Expr) {
	st, ok := t.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	kept := st.Fields.List[:0]
	elided := false
	for _, f := range st.Fields.List {
		if len(exportedNames(f.Names)) == len(f.Names) && len(f.Names) > 0 {
			f.Doc, f.Comment = nil, nil
			kept = append(kept, f)
			continue
		}
		elided = true
	}
	st.Fields.List = kept
	if elided {
		// A marker keeps "struct with hidden fields" distinguishable from
		// an open struct literal.
		st.Fields.List = append(st.Fields.List, &ast.Field{
			Names: nil,
			Type:  &ast.Ident{Name: "unexportedFields"},
		})
	}
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("/* render error: %v */", err)
	}
	// Collapse internal newlines so each symbol stays one logical block.
	return strings.TrimRight(buf.String(), "\n")
}
