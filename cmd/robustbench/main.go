// Command robustbench runs the experiment harness reproducing every
// quantitative claim of "The Adversarial Robustness of Sampling"
// (Ben-Eliezer & Yogev, PODS 2020). Each experiment prints one table;
// DESIGN.md indexes the experiments and records the expected shape of each.
//
// Monte-Carlo trials fan out across a worker pool (-workers, default all
// CPUs); tables are byte-identical for every worker count, so -workers only
// changes wall-clock time. Non-adaptive games ingest their streams in
// batches (-chunk elements per batch); batch ingestion is chunking-
// invariant, so -chunk also only changes wall-clock time. The sharded
// experiment E18 sweeps its shard count with -shards; unlike -workers and
// -chunk this selects a different measured configuration (per-shard
// samplers draw their own RNG streams), so it changes the E18 table — and
// only that one.
//
// Usage:
//
//	robustbench -all                 # run every experiment at full scale
//	robustbench -exp E3              # run a single experiment
//	robustbench -exp E5,E19          # run several experiments
//	robustbench -list                # list experiment IDs and titles
//	robustbench -exp E1 -trials 100 -scale 0.5 -seed 7 -workers 4
//	robustbench -exp E18 -shards 16  # sharded engine at S=16
//	robustbench -exp E19 -producers 1,2,4,8,16,32  # serving scaling curve
//	robustbench -exp E20 -faults "seed=1,crash=0.01"  # self-healing chaos run
//	robustbench -exp E21             # sketch-switching vs oversampling race
//	robustbench -exp E22 -tenants 1000000 -tenantskew 1.2  # farm at one point
//	robustbench -fig F1              # ASCII error-trajectory figures
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"robustsample/internal/bench"
	"robustsample/internal/game"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		exp        = flag.String("exp", "", "run one or more experiments by ID, comma-separated (E1..E22)")
		fig        = flag.String("fig", "", "render a figure by ID (F1, F2)")
		list       = flag.Bool("list", false, "list experiments and exit")
		seed       = flag.Uint64("seed", bench.DefaultConfig().Seed, "root RNG seed")
		trials     = flag.Int("trials", bench.DefaultConfig().Trials, "trials per table row")
		scale      = flag.Float64("scale", bench.DefaultConfig().Scale, "stream-length scale factor")
		workers    = flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs, 1 = serial)")
		chunk      = flag.Int("chunk", game.SpanChunkCap, "batch-ingest chunk size for non-adaptive games (tables are identical for every value)")
		shards     = flag.Int("shards", 0, "shard count for the sharded experiment E18 (0 = sweep 1/2/4/8)")
		producers  = flag.String("producers", "", "comma-separated producer-lane counts for the concurrent serving experiment E19, one measured point each (empty = sweep 1,2,4,8,16,32)")
		faultSpec  = flag.String("faults", "", "fault-plan spec for the self-healing experiment E20, e.g. \"seed=1,crash=0.01,stall=0.005@2ms,corrupt=0.005\" (empty = sweep the default crash-rate ladder)")
		tenants    = flag.Int("tenants", 0, "tenant count for the multi-tenant farm experiment E22 (0 = sweep the 1e3/1e5/1e6 ladder)")
		tenantSkew = flag.Float64("tenantskew", 0, "Zipf exponent of E22's tenant id distribution (0 = reference skew 1.1)")
		jsonPath   = flag.String("json", "", "also emit machine-readable benchmark measurements (name, ns/op, allocs/op, params) for the selected experiments to this file (\"-\" = stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *chunk > 0 {
		game.SpanChunkCap = *chunk
	}
	lanes, err := parseIntList(*producers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "robustbench: -producers: %v\n", err)
		os.Exit(2)
	}
	cfg := bench.Config{Seed: *seed, Trials: *trials, Scale: *scale, Workers: *workers, Shards: *shards, Producers: lanes, Faults: *faultSpec, Tenants: *tenants, TenantSkew: *tenantSkew}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		for _, f := range bench.Figures() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
	case *fig != "":
		f, ok := bench.FigureByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "robustbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(2)
		}
		f.Render(cfg).Render(os.Stdout)
	case *all:
		bench.RunAll(cfg, os.Stdout)
		emitJSON(*jsonPath, cfg, bench.All(), *chunk)
	case *exp != "":
		var exps []bench.Experiment
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "robustbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
		for _, e := range exps {
			e.Run(cfg).Render(os.Stdout)
		}
		emitJSON(*jsonPath, cfg, exps, *chunk)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// parseIntList parses a comma-separated list of positive integers; an
// empty string yields nil (the default sweep).
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", part)
		}
		if v < 1 {
			return nil, fmt.Errorf("count %d out of range", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// emitJSON measures the selected experiments once more under cfg and
// writes the machine-readable results to path; the perf trajectory files
// (BENCH_*.json) are produced this way. When the selection includes the
// concurrent serving experiment E19, the throughput-vs-producers scaling
// curve (one ConcurrentIngest entry per lane count) is appended; when it
// includes the self-healing experiment E20, the checkpoint-overhead curve
// (ConcurrentIngestCkpt, same sweep with crash supervision on) is appended
// too; when it includes the farm experiment E22, the tenant-scaling curve
// (one FarmIngest entry per tenant count) is appended as well. A no-op when
// path is empty.
func emitJSON(path string, cfg bench.Config, exps []bench.Experiment, chunk int) {
	if path == "" {
		return
	}
	results := bench.Measure(cfg, exps, chunk)
	for _, e := range exps {
		if e.ID == "E19" {
			results = append(results, bench.MeasureConcurrentIngest(cfg)...)
			break
		}
	}
	for _, e := range exps {
		if e.ID == "E20" {
			results = append(results, bench.MeasureConcurrentIngestCkpt(cfg)...)
			break
		}
	}
	for _, e := range exps {
		if e.ID == "E22" {
			results = append(results, bench.MeasureFarm(cfg)...)
			break
		}
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteJSON(out, results); err != nil {
		fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
		os.Exit(1)
	}
}
