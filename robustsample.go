// Package robustsample is a Go implementation of
//
//	"The Adversarial Robustness of Sampling"
//	Omri Ben-Eliezer and Eylon Yogev, PODS 2020 (arXiv:1906.11327)
//
// It provides the two sampling algorithms the paper analyzes — Bernoulli
// sampling and reservoir sampling (Vitter's Algorithm R) — together with:
//
//   - sample-size calculators implementing Theorem 1.2 (adversarial
//     robustness), Theorem 1.4 (continuous robustness) and the classical
//     static VC bounds, so callers can pick parameters that guarantee an
//     eps-approximation even against fully adaptive adversaries;
//   - the adversarial game of Section 2 (AdaptiveGame), exact
//     eps-approximation verdicts for the ordered set systems the paper
//     uses (prefixes, intervals, singletons, suffixes), and the Figure-3
//     bisection attack of Section 5, including an exact unbounded-universe
//     simulation;
//   - the applications of Section 1.2 as subpackages: quantile sketches,
//     heavy hitters, range queries, center points, clustering
//     acceleration and distributed-routing simulation (see
//     internal/... for the full inventory, and cmd/robustbench for the
//     experiment harness reproducing every claim).
//
// # The public surface: generic, mergeable, serializable sketches
//
// New code should use the first-class subpackages rather than this flat
// facade:
//
//   - robustsample/sketch — the unified Sketch[T] interface (Offer,
//     OfferBatch, View/Query, MergeFrom, Reset, Snapshot/Restore) over
//     every sampler, generic over the element type via a Universe[T]
//     codec, with error-returning constructors and functional options.
//   - robustsample/quantile — the Corollary 1.5 robust quantile sketch.
//   - robustsample/topk — the Corollary 1.6 robust heavy hitters.
//   - robustsample/shard — the sharded continuous-sampling engine with
//     pluggable routers, mergeable verdicts and whole-engine checkpoints.
//
// This facade remains source-compatible and byte-identical in output — it
// wraps the same engines the new packages wrap — but it is frozen: it is
// int64-only, panics on invalid parameters, and cannot persist state. See
// README.md for the symbol-by-symbol migration table.
//
// # Quick start (deprecated facade style)
//
//	params := robustsample.Params{Eps: 0.1, Delta: 0.05, N: 100000}
//	sys := robustsample.NewPrefixes(1 << 20)
//	res := robustsample.NewRobustReservoir(params, sys)
//	r := robustsample.NewRNG(42)
//	for _, x := range stream {
//	    res.Offer(x, r)
//	}
//	// res.View() is an eps-approximation of the stream with probability
//	// >= 1-delta, no matter how adaptively the stream was chosen.
//
// # Performance: sublinear verdicts, batched ingest, parallel trials
//
// Exact verdicts are served by two engines that agree bit-for-bit (error
// and witness): the one-shot MaxDiscrepancy (sort + merge-scan, used for a
// single verdict) and the incremental Accumulator obtained from
// SetSystem.NewAccumulator. The Accumulator maintains coordinate-compressed
// histograms of the stream and sample — AddStream/AddStreamBatch, AddSample
// and RemoveSample (the reservoir eviction path) are O(1) expected per
// update — and Max() runs a block/convex-hull engine: distinct values are
// grouped into ~sqrt(U) sorted blocks whose cached hulls answer the linear
// functional num(t) = Cx(t)·|S| − Cs(t)·|X| in O(log B) per clean block, so
// checkpoint-dense continuous games (RunContinuousGame) re-verdict in
// O(dirty·B + (U/B)·log B) instead of sweeping every distinct value, and
// span-heavy games degrade gracefully to the flat sweep. Both engines
// compare integer numerators of the CDF difference in exact int64
// arithmetic; floating point enters only in the final division.
//
//	acc := sys.NewAccumulator()
//	acc.AddStream(x)            // per stream element (AddStreamBatch for runs)
//	acc.AddSample(x)            // element entered the sample
//	acc.RemoveSample(y)         // element evicted from the sample
//	d := acc.Max()              // exact Discrepancy, sublinear when checkpoint-dense
//
// Stream ingest is batched end-to-end for non-adaptive inputs: every
// sampler offers OfferBatch (the reservoir family draws bit-identically to
// per-element Offers; Bernoulli gap-skips rejected stretches with one
// geometric draw per admitted element), and the games detect non-adaptive
// adversaries to collapse their round loops into chunked bulk ingest.
// Batch results never depend on how a stream is sliced into batches.
//
// Monte-Carlo estimation (EstimateRobustness and the experiment harness
// under cmd/robustbench) fans independent trials out across a worker pool:
// runtime.GOMAXPROCS workers by default, an explicit count via
// EstimateRobustnessWorkers or robustbench's -workers flag. Per-trial RNG
// streams are pre-split sequentially from the root before the fan-out and
// results are reduced in trial order, so estimates and experiment tables
// are byte-identical for every worker count (workers=1 reproduces the
// historical serial loop exactly); workers additionally reuse samplers,
// adversaries and accumulators across their trials (full Reset per game),
// keeping the hot loop allocation-free.
package robustsample

import (
	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// RNG is the deterministic, splittable random source used by all samplers
// and games.
type RNG = rng.RNG

// NewRNG returns a deterministic generator seeded from seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Params bundles an approximation target (eps, delta) for a stream of
// length N.
type Params = core.Params

// SetSystem is a family of ranges over an ordered integer universe with
// exact discrepancy computation (Definition 1.1).
type SetSystem = setsystem.SetSystem

// Discrepancy reports a maximal density deviation and a witnessing range.
type Discrepancy = setsystem.Discrepancy

// Accumulator is the incremental discrepancy engine: O(1) expected updates
// via AddStream/AddSample/RemoveSample and exact evaluation via Max,
// bit-identical to the one-shot MaxDiscrepancy. Obtain one from a
// SetSystem's NewAccumulator.
type Accumulator = setsystem.Accumulator

// NewPrefixes returns the one-sided interval system {[1,b]} over [1, n]
// (VC-dimension 1, |R| = n) — the system of Theorem 1.3 and Corollary 1.5.
func NewPrefixes(n int64) SetSystem { return setsystem.NewPrefixes(n) }

// NewIntervals returns the system of all intervals {[a,b]} over [1, n].
func NewIntervals(n int64) SetSystem { return setsystem.NewIntervals(n) }

// NewSingletons returns the system {{a}} over [1, n] used by the
// heavy-hitters application (Corollary 1.6).
func NewSingletons(n int64) SetSystem { return setsystem.NewSingletons(n) }

// NewSuffixes returns the system {[b,n]} over [1, n].
func NewSuffixes(n int64) SetSystem { return setsystem.NewSuffixes(n) }

// IsEpsApproximation reports whether sample is an eps-approximation of
// stream with respect to sys (Definition 1.1).
func IsEpsApproximation(sys SetSystem, stream, sample []int64, eps float64) bool {
	return setsystem.IsEpsApproximation(sys, stream, sample, eps)
}

// BernoulliSampler keeps each element independently with probability P.
type BernoulliSampler = sampler.Bernoulli[int64]

// ReservoirSampler maintains a uniform fixed-size sample via Vitter's
// Algorithm R, exactly as the paper's Section 2 pseudocode.
type ReservoirSampler = sampler.Reservoir[int64]

// WeightedReservoirSampler is the Efraimidis-Spirakis weighted extension
// discussed in Section 1.3.
type WeightedReservoirSampler = sampler.WeightedReservoir[int64]

// NewBernoulli returns a Bernoulli sampler with rate p in [0, 1].
//
// Deprecated: use sketch.NewBernoulli, which is generic, validates by
// error, owns its RNG, and supports MergeFrom and Snapshot/Restore.
func NewBernoulli(p float64) *BernoulliSampler { return sampler.NewBernoulli[int64](p) }

// NewReservoir returns a reservoir sampler with memory k >= 1.
//
// Deprecated: use sketch.NewReservoir, which is generic, validates by
// error, owns its RNG, and supports MergeFrom and Snapshot/Restore.
func NewReservoir(k int) *ReservoirSampler { return sampler.NewReservoir[int64](k) }

// NewWeightedReservoir returns a weighted reservoir sampler with memory k.
//
// Deprecated: use sketch.NewWeighted.
func NewWeightedReservoir(k int) *WeightedReservoirSampler {
	return sampler.NewWeightedReservoir[int64](k)
}

// BernoulliRate returns the Theorem 1.2 rate making BernoulliSample
// (eps, delta)-robust for a set system with the given ln|R|.
func BernoulliRate(p Params, logCardinality float64) float64 {
	return core.BernoulliRate(p, logCardinality)
}

// ReservoirSize returns the Theorem 1.2 memory size making ReservoirSample
// (eps, delta)-robust for a set system with the given ln|R|.
func ReservoirSize(p Params, logCardinality float64) int {
	return core.ReservoirSize(p, logCardinality)
}

// ContinuousReservoirSize returns the Theorem 1.4 memory size making
// ReservoirSample (eps, delta)-continuously robust.
func ContinuousReservoirSize(p Params, logCardinality float64) int {
	return core.ContinuousReservoirSize(p, logCardinality)
}

// StaticReservoirSize returns the classical non-adaptive size, with the
// VC-dimension in place of ln|R| — NOT sufficient against adaptive
// adversaries in general (Theorem 1.3).
func StaticReservoirSize(p Params, vcDim int) int {
	return core.StaticReservoirSize(p, vcDim)
}

// StaticContinuousReservoirSize is the "Moreover" clause of Theorem 1.4:
// continuous robustness against static adversaries only, with the
// VC-dimension in place of ln|R|.
func StaticContinuousReservoirSize(p Params, vcDim int) int {
	return core.StaticContinuousReservoirSize(p, vcDim)
}

// ReservoirLSampler is Vitter's Algorithm L: identical sample distribution
// to ReservoirSampler at O(k log(n/k)) expected random draws — the
// high-throughput variant, equally robust (admissions are value-oblivious).
type ReservoirLSampler = sampler.ReservoirL[int64]

// NewReservoirL returns an Algorithm L reservoir with memory k >= 1.
//
// Deprecated: use sketch.NewReservoirL.
func NewReservoirL(k int) *ReservoirLSampler { return sampler.NewReservoirL[int64](k) }

// NewRobustBernoulli builds a Bernoulli sampler parameterized per Theorem
// 1.2 for the given set system.
//
// Deprecated: use sketch.NewRobustBernoulli.
func NewRobustBernoulli(p Params, sys SetSystem) *BernoulliSampler {
	return core.NewRobustBernoulli(p, sys)
}

// NewRobustReservoir builds a reservoir sampler parameterized per Theorem
// 1.2 for the given set system.
//
// Deprecated: use sketch.NewRobustReservoir (or quantile.New / topk.New
// for the application-specific sizings).
func NewRobustReservoir(p Params, sys SetSystem) *ReservoirSampler {
	return core.NewRobustReservoir(p, sys)
}

// NewContinuousRobustReservoir builds a reservoir sampler parameterized per
// Theorem 1.4 for the given set system.
//
// Deprecated: use sketch.NewContinuousRobustReservoir.
func NewContinuousRobustReservoir(p Params, sys SetSystem) *ReservoirSampler {
	return core.NewContinuousRobustReservoir(p, sys)
}

// QuantileSketchSize returns the Corollary 1.5 reservoir size for an
// (eps, delta)-robust quantile sketch over a universe of the given size.
func QuantileSketchSize(p Params, universeSize int64) int {
	return core.QuantileSketchSize(p, universeSize)
}

// HeavyHitterSize returns the Corollary 1.6 reservoir size for solving
// (alpha, eps) heavy hitters robustly.
func HeavyHitterSize(eps, delta float64, n int, universeSize int64) int {
	return core.HeavyHitterSize(eps, delta, n, universeSize)
}

// Sampler is the streaming-player interface of the adversarial game.
type Sampler = game.Sampler

// Adversary chooses the stream adaptively given full view of the sample.
type Adversary = game.Adversary

// Observation is the information an adversary sees each round (Figure 1).
type Observation = game.Observation

// GameResult is the outcome of one AdaptiveGame.
type GameResult = game.Result

// ContinuousGameResult is the outcome of one ContinuousAdaptiveGame.
type ContinuousGameResult = game.ContinuousResult

// RunGame plays one AdaptiveGame (Figure 1) of n rounds and reports the
// exact eps-approximation verdict.
func RunGame(s Sampler, adv Adversary, sys SetSystem, n int, eps float64, r *RNG) GameResult {
	return game.Run(s, adv, sys, n, eps, r)
}

// RunContinuousGame plays one ContinuousAdaptiveGame (Figure 2), evaluating
// the verdict at the given checkpoints (the final round is always checked).
func RunContinuousGame(s Sampler, adv Adversary, sys SetSystem, n int, eps float64, checkpoints []int, r *RNG) ContinuousGameResult {
	return game.RunContinuous(s, adv, sys, n, eps, checkpoints, r)
}

// Checkpoints returns the Theorem 1.4 geometric checkpoint schedule. It
// panics unless gamma > 0, preserving the historical facade behaviour; new
// code should handle game.ErrBadGamma through CheckpointSchedule.
func Checkpoints(start, n int, gamma float64) []int {
	return game.MustCheckpoints(start, n, gamma)
}

// CheckpointSchedule is Checkpoints with error-based validation: it reports
// a non-nil error (errors.Is-able against ErrBadGamma) instead of panicking
// when gamma <= 0.
func CheckpointSchedule(start, n int, gamma float64) ([]int, error) {
	return game.Checkpoints(start, n, gamma)
}

// ErrBadGamma is the sentinel reported by CheckpointSchedule for a
// non-positive checkpoint growth factor.
var ErrBadGamma = game.ErrBadGamma

// NewBisectionAttack returns the Figure-3 adversary over [1, universe] with
// split parameter pPrime in (0, 1).
func NewBisectionAttack(universe int64, pPrime float64) Adversary {
	return adversary.NewBisection(universe, pPrime)
}

// NewStaticUniformAdversary returns a non-adaptive i.i.d.-uniform stream
// generator over [1, universe].
func NewStaticUniformAdversary(universe int64) Adversary {
	return adversary.NewStaticUniform(universe)
}

// AttackResult is the outcome of an exact unbounded-universe bisection
// attack (Section 5), with the stream relabeled to ranks 1..n.
type AttackResult = adversary.AttackResult

// RunBisectionAttackBernoulli simulates the Section 5 attack against
// BernoulliSample(p) over an unbounded ordered universe.
func RunBisectionAttackBernoulli(n int, p float64, r *RNG) AttackResult {
	return adversary.RunExactBisectionBernoulli(n, p, r)
}

// RunBisectionAttackReservoir simulates the Section 5 attack against
// ReservoirSample(k) over an unbounded ordered universe.
func RunBisectionAttackReservoir(n, k int, r *RNG) AttackResult {
	return adversary.RunExactBisectionReservoir(n, k, r)
}

// RobustnessEstimate is a Monte-Carlo robustness measurement.
type RobustnessEstimate = core.RobustnessEstimate

// EstimateRobustness plays repeated adaptive games and reports the
// empirical failure rate of the eps-approximation verdict. Trials run in
// parallel on runtime.GOMAXPROCS workers; the result is byte-identical to a
// serial run (see EstimateRobustnessWorkers).
func EstimateRobustness(mkSampler func() Sampler, mkAdv func() Adversary, sys SetSystem, p Params, trials int, root *RNG) RobustnessEstimate {
	return core.EstimateRobustness(mkSampler, mkAdv, sys, p, trials, root)
}

// EstimateRobustnessWorkers is EstimateRobustness with an explicit worker
// pool size (0 = runtime.GOMAXPROCS, 1 = serial). Per-trial RNGs are split
// sequentially from root before the fan-out, so the estimate does not
// depend on the worker count.
func EstimateRobustnessWorkers(mkSampler func() Sampler, mkAdv func() Adversary, sys SetSystem, p Params, trials, workers int, root *RNG) RobustnessEstimate {
	return core.EstimateRobustnessWorkers(mkSampler, mkAdv, sys, p, trials, workers, root)
}
